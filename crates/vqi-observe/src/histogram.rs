//! Lock-free log-scale histograms.
//!
//! Values land in power-of-two buckets (bucket `b` holds values whose
//! bit length is `b`, i.e. `2^(b-1) ..= 2^b - 1`), which gives constant
//! relative error across nine decades — exactly what wall-time in
//! nanoseconds needs — at a fixed 65 × 8 bytes of storage. All cells
//! are relaxed atomics, so recording from `rayon` workers never blocks.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets: one for zero plus one per bit length of a `u64`.
pub const BUCKETS: usize = 65;

/// A concurrent log-scale histogram of `u64` values.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Index of the bucket that holds `value`.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

/// Inclusive upper bound of bucket `b`.
#[inline]
pub fn bucket_upper_bound(b: usize) -> u64 {
    if b == 0 {
        0
    } else if b >= 64 {
        u64::MAX
    } else {
        (1u64 << b) - 1
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Clears all cells.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }

    /// A point-in-time copy of the histogram.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
            max: self.max.load(Ordering::Relaxed),
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

/// An immutable histogram snapshot (what reports carry).
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize))]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of all observations (wrapping on overflow).
    pub sum: u64,
    /// Smallest observation (0 when empty).
    pub min: u64,
    /// Largest observation.
    pub max: u64,
    /// Per-bucket counts, indexed by [`bucket_index`].
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// An empty snapshot.
    pub fn empty() -> Self {
        HistogramSnapshot {
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
            buckets: vec![0; BUCKETS],
        }
    }

    /// Mean observation (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimates the `q`-quantile (`0.0 ..= 1.0`) by linear
    /// interpolation inside the bucket where the rank falls, clamped to
    /// the observed `[min, max]`.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if seen + n >= rank {
                let lo = if b == 0 {
                    0
                } else {
                    bucket_upper_bound(b - 1) + 1
                };
                let hi = bucket_upper_bound(b);
                let frac = (rank - seen) as f64 / n as f64;
                let est = lo as f64 + frac * (hi.saturating_sub(lo)) as f64;
                return (est as u64).clamp(self.min, self.max);
            }
            seen += n;
        }
        self.max
    }

    /// Subtracts an earlier snapshot of the *same* histogram, giving
    /// the observations recorded since `baseline` was taken. Counts,
    /// sums, and buckets subtract (saturating, so a reset between the
    /// two snapshots degrades to "everything is new" instead of
    /// wrapping); `min`/`max` cannot be recovered exactly from
    /// aggregates, so they are re-derived from the bounds of the first
    /// and last non-empty delta buckets.
    pub fn delta(&self, baseline: &HistogramSnapshot) -> HistogramSnapshot {
        let count = self.count.saturating_sub(baseline.count);
        if count == 0 {
            return HistogramSnapshot::empty();
        }
        if baseline.count == 0 {
            // nothing to subtract: keep the exact min/max
            return self.clone();
        }
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .zip(baseline.buckets.iter())
            .map(|(&a, &b)| a.saturating_sub(b))
            .collect();
        let first = buckets.iter().position(|&n| n > 0);
        let last = buckets.iter().rposition(|&n| n > 0);
        HistogramSnapshot {
            count,
            sum: self.sum.wrapping_sub(baseline.sum),
            min: match first {
                Some(0) | None => 0,
                Some(b) => bucket_upper_bound(b - 1) + 1,
            },
            max: last.map(bucket_upper_bound).unwrap_or(0),
            buckets,
        }
    }

    /// Merges two snapshots into their union. The operation is
    /// associative and commutative with [`HistogramSnapshot::empty`] as
    /// identity, so shard-local histograms can be reduced in any order.
    pub fn merge(&self, other: &HistogramSnapshot) -> HistogramSnapshot {
        let count = self.count + other.count;
        HistogramSnapshot {
            count,
            sum: self.sum.wrapping_add(other.sum),
            min: match (self.count, other.count) {
                (0, _) => other.min,
                (_, 0) => self.min,
                _ => self.min.min(other.min),
            },
            max: self.max.max(other.max),
            buckets: self
                .buckets
                .iter()
                .zip(other.buckets.iter())
                .map(|(&a, &b)| a + b)
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn bucket_bounds_are_consistent() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        for v in [0u64, 1, 2, 3, 7, 8, 1023, 1024, u64::MAX] {
            let b = bucket_index(v);
            assert!(v <= bucket_upper_bound(b));
            if b > 0 {
                assert!(v > bucket_upper_bound(b - 1));
            }
        }
    }

    #[test]
    fn records_and_summarizes() {
        let h = Histogram::new();
        for v in [1u64, 2, 3, 100, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 1106);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 1000);
        assert!((s.mean() - 221.2).abs() < 1e-9);
        assert_eq!(s.buckets.iter().sum::<u64>(), 5);
    }

    #[test]
    fn quantiles_are_monotone_and_bounded() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        let mut last = 0;
        for q in [0.0, 0.1, 0.5, 0.9, 0.99, 1.0] {
            let e = s.quantile(q);
            assert!(e >= last, "quantile not monotone at q={q}");
            assert!(e >= s.min && e <= s.max);
            last = e;
        }
        // log-scale estimate of the median of 1..=1000 is within a 2x band
        let p50 = s.quantile(0.5) as f64;
        assert!((250.0..=1000.0).contains(&p50), "p50 estimate {p50} off");
    }

    #[test]
    fn empty_snapshot_is_merge_identity() {
        let h = Histogram::new();
        h.record(5);
        h.record(7);
        let s = h.snapshot();
        assert_eq!(s.merge(&HistogramSnapshot::empty()), s);
        assert_eq!(HistogramSnapshot::empty().merge(&s), s);
    }

    #[test]
    fn merge_is_associative_and_commutative() {
        // deterministic pseudo-random cases (no external rng available)
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..50 {
            let mk = |vals: &[u64]| {
                let h = Histogram::new();
                for &v in vals {
                    h.record(v);
                }
                h.snapshot()
            };
            let a = mk(&[next() % 1000, next() % 10, next()]);
            let b = mk(&[next() % 100_000]);
            let c = mk(&[next() % 7, next() % 3]);
            assert_eq!(a.merge(&b).merge(&c), a.merge(&b.merge(&c)));
            assert_eq!(a.merge(&b), b.merge(&a));
        }
    }

    #[test]
    fn delta_isolates_the_new_observations() {
        let h = Histogram::new();
        h.record(10);
        h.record(500);
        let baseline = h.snapshot();
        h.record(100_000);
        h.record(200_000);
        let d = h.snapshot().delta(&baseline);
        assert_eq!(d.count, 2);
        assert_eq!(d.sum, 300_000);
        assert_eq!(d.buckets.iter().sum::<u64>(), 2);
        // min/max are bucket-bound approximations around the new values
        assert!(d.min <= 100_000 && d.min > 500, "min bound {}", d.min);
        assert!(d.max >= 200_000, "max bound {}", d.max);
        // no new observations → empty delta
        assert_eq!(
            h.snapshot().delta(&h.snapshot()),
            HistogramSnapshot::empty()
        );
        // delta against empty is the identity
        assert_eq!(
            h.snapshot().delta(&HistogramSnapshot::empty()),
            h.snapshot()
        );
    }

    #[test]
    fn concurrent_records_are_lossless() {
        let h = Arc::new(Histogram::new());
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..5_000u64 {
                        h.record(t * 5_000 + i);
                    }
                })
            })
            .collect();
        for hn in handles {
            hn.join().unwrap();
        }
        let s = h.snapshot();
        assert_eq!(s.count, 40_000);
        assert_eq!(s.buckets.iter().sum::<u64>(), 40_000);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 39_999);
    }
}
