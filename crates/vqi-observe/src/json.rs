//! A minimal JSON emitter.
//!
//! The crate is dependency-free by default, so snapshot export cannot
//! assume `serde_json`; this module covers the handful of JSON shapes a
//! [`MetricsReport`](crate::MetricsReport) needs (string keys, integer
//! and float values, nested objects and arrays). With the `serde`
//! feature enabled the same types also derive `Serialize`.

/// Escapes `s` as the body of a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats `v` as a JSON number (finite floats only; non-finite values
/// become `null`, which JSON has no float encoding for).
pub fn number(v: f64) -> String {
    if v.is_finite() {
        // shortest round-trippable form is overkill for metrics; three
        // decimals keeps snapshots diffable
        if v.fract() == 0.0 && v.abs() < 1e15 {
            format!("{}", v as i64)
        } else {
            format!("{v:.3}")
        }
    } else {
        "null".to_string()
    }
}

/// An append-only JSON object/array writer with fixed two-space
/// indentation.
#[derive(Debug, Default)]
pub struct JsonWriter {
    buf: String,
    depth: usize,
    /// Whether the current container already has one entry.
    needs_comma: Vec<bool>,
}

impl JsonWriter {
    /// An empty writer.
    pub fn new() -> Self {
        JsonWriter::default()
    }

    fn newline(&mut self) {
        self.buf.push('\n');
        for _ in 0..self.depth {
            self.buf.push_str("  ");
        }
    }

    fn pre_entry(&mut self) {
        if let Some(last) = self.needs_comma.last_mut() {
            if *last {
                self.buf.push(',');
            }
            *last = true;
        }
        if !self.needs_comma.is_empty() {
            self.newline();
        }
    }

    /// Opens an object, optionally keyed (inside another object).
    pub fn open_object(&mut self, key: Option<&str>) {
        self.pre_entry();
        if let Some(k) = key {
            self.buf.push_str(&format!("\"{}\": ", escape(k)));
        }
        self.buf.push('{');
        self.depth += 1;
        self.needs_comma.push(false);
    }

    /// Closes the innermost object.
    pub fn close_object(&mut self) {
        let had_entries = self.needs_comma.pop().unwrap_or(false);
        self.depth = self.depth.saturating_sub(1);
        if had_entries {
            self.newline();
        }
        self.buf.push('}');
    }

    /// Writes `"key": <raw>` where `raw` is already valid JSON.
    pub fn raw_field(&mut self, key: &str, raw: &str) {
        self.pre_entry();
        self.buf.push_str(&format!("\"{}\": {raw}", escape(key)));
    }

    /// Writes an unsigned integer field.
    pub fn u64_field(&mut self, key: &str, v: u64) {
        self.raw_field(key, &v.to_string());
    }

    /// Writes a signed integer field.
    pub fn i64_field(&mut self, key: &str, v: i64) {
        self.raw_field(key, &v.to_string());
    }

    /// Writes a float field.
    pub fn f64_field(&mut self, key: &str, v: f64) {
        self.raw_field(key, &number(v));
    }

    /// Writes a string field.
    pub fn str_field(&mut self, key: &str, v: &str) {
        self.raw_field(key, &format!("\"{}\"", escape(v)));
    }

    /// The finished document.
    pub fn finish(self) -> String {
        self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_covers_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
        assert_eq!(escape("plain.name"), "plain.name");
    }

    #[test]
    fn numbers_are_json_safe() {
        assert_eq!(number(3.0), "3");
        assert_eq!(number(3.25), "3.250");
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(number(f64::INFINITY), "null");
    }

    #[test]
    fn writer_produces_wellformed_nesting() {
        let mut w = JsonWriter::new();
        w.open_object(None);
        w.u64_field("a", 1);
        w.open_object(Some("nested"));
        w.str_field("k", "v\"q");
        w.close_object();
        w.i64_field("b", -2);
        w.close_object();
        let s = w.finish();
        assert!(s.starts_with('{') && s.ends_with('}'));
        assert!(s.contains("\"a\": 1"));
        assert!(s.contains("\"nested\": {"));
        assert!(s.contains("\"k\": \"v\\\"q\""));
        // balanced braces
        assert_eq!(s.matches('{').count(), s.matches('}').count());
    }

    #[test]
    fn empty_object_has_no_dangling_comma() {
        let mut w = JsonWriter::new();
        w.open_object(None);
        w.open_object(Some("empty"));
        w.close_object();
        w.close_object();
        let s = w.finish();
        assert!(s.contains("\"empty\": {}"));
        assert!(!s.contains(",}"));
    }
}
