//! `vqi-observe` — spans, counters, and stage-level metrics for the
//! pattern-selection pipelines.
//!
//! Every pipeline in this workspace (CATAPULT, TATTOO, MIDAS, the
//! modular assembly) reports into one global, thread-safe
//! [`Registry`]: named [`Counter`]s and [`Gauge`]s, log-scale
//! [`Histogram`]s, and wall-time spans that also maintain a
//! parent/child trace tree. Snapshots export as an aligned text table
//! or JSON via [`MetricsReport`].
//!
//! Recording is **off by default** and gated by one relaxed atomic
//! load, so instrumented hot paths cost nothing measurable until
//! [`set_enabled`]`(true)` (the CLI's `--metrics` flag, the `exp_*`
//! harnesses, or a test) turns them on.
//!
//! Metric names follow `<system>.<phase>.<metric>` — e.g.
//! `tattoo.truss_decompose` (a span), `catapult.walk.candidates` (a
//! counter), `tattoo.map.in_flight` (a gauge). The [`mem`] module adds
//! the `mem.*` gauge family: per-structure byte counts and process RSS
//! sampled from `/proc/self/status`.
//!
//! ```
//! vqi_observe::set_enabled(true);
//! {
//!     let _span = vqi_observe::span("demo.phase");
//!     vqi_observe::incr("demo.phase.items", 3);
//! }
//! let report = vqi_observe::snapshot();
//! assert_eq!(report.counters["demo.phase.items"], 3);
//! assert_eq!(report.spans["demo.phase"].count, 1);
//! vqi_observe::set_enabled(false);
//! ```
//!
//! The crate is intentionally dependency-free (`std` only); the
//! optional `serde` feature adds `Serialize` derives to the snapshot
//! types.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod counter;
mod histogram;
pub mod journal;
pub mod json;
pub mod mem;
mod registry;
mod report;
mod span;

pub use counter::{Counter, Gauge};
pub use histogram::{bucket_index, bucket_upper_bound, Histogram, HistogramSnapshot, BUCKETS};
pub use journal::{
    chrome_trace, ctx_scope, current_ctx, event_multiset, folded_stacks, instant, journal_dropped,
    journal_enabled, journal_events, journal_recording, journal_reset, profile, run,
    set_journal_capacity, set_journal_enabled, validate_chrome_trace, CtxScope, Event, EventKind,
    Profile, ProfileNode, RunGuard, TraceCtx, TraceStats,
};
pub use registry::Registry;
pub use report::{fmt_ns, MetricsReport, TraceNode};
pub use span::SpanGuard;

/// Whether the global registry is recording.
#[inline]
pub fn enabled() -> bool {
    Registry::global().is_enabled()
}

/// Turns recording on or off globally.
pub fn set_enabled(on: bool) {
    Registry::global().set_enabled(on);
}

/// Opens a wall-time span; the returned guard records into the
/// histogram named `name` (and the trace tree) when dropped. A no-op
/// guard is returned while recording is disabled.
#[inline]
pub fn span(name: &str) -> SpanGuard {
    if !enabled() {
        return SpanGuard::noop();
    }
    SpanGuard::enter(name)
}

/// [`span`] taking deferred format arguments: the name is only
/// materialized when recording is enabled, and a literal with no
/// interpolations (`span!("kernel.canon")`) borrows the static string
/// instead of allocating. Prefer the [`span!`] macro.
#[inline]
pub fn span_fmt(args: std::fmt::Arguments<'_>) -> SpanGuard {
    if !enabled() {
        return SpanGuard::noop();
    }
    match args.as_str() {
        Some(name) => SpanGuard::enter(name),
        None => SpanGuard::enter(&args.to_string()),
    }
}

/// Adds `by` to the counter named `name` (no-op while disabled).
#[inline]
pub fn incr(name: &str, by: u64) {
    if enabled() {
        Registry::global().counter(name).add(by);
    }
}

/// Adds `delta` to the gauge named `name` (no-op while disabled).
#[inline]
pub fn gauge_add(name: &str, delta: i64) {
    if enabled() {
        Registry::global().gauge(name).add(delta);
    }
}

/// Sets the gauge named `name` (no-op while disabled).
#[inline]
pub fn gauge_set(name: &str, value: i64) {
    if enabled() {
        Registry::global().gauge(name).set(value);
    }
}

/// Records `value` into the log-scale histogram named `name` (no-op
/// while disabled).
#[inline]
pub fn observe(name: &str, value: u64) {
    if enabled() {
        Registry::global().histogram(name).record(value);
    }
}

/// Times `f` under a span named `name`. The duration is always
/// returned (for harnesses that print timings); it is additionally
/// recorded into the registry when enabled — so experiment output and
/// metrics come from the same clock and cannot drift apart.
pub fn time<T>(name: &str, f: impl FnOnce() -> T) -> (T, std::time::Duration) {
    let start = std::time::Instant::now();
    let guard = span(name);
    let out = f();
    drop(guard);
    (out, start.elapsed())
}

/// A point-in-time snapshot of the global registry.
pub fn snapshot() -> MetricsReport {
    Registry::global().snapshot()
}

/// Clears every metric in the global registry.
pub fn reset() {
    Registry::global().reset();
}

/// Opens a span with a formatted name, deferring the formatting until
/// recording is known to be enabled:
///
/// ```
/// let stage = "cluster";
/// let _span = vqi_observe::span!("modular.{stage}");
/// ```
#[macro_export]
macro_rules! span {
    ($($arg:tt)*) => {
        $crate::span_fmt(::std::format_args!($($arg)*))
    };
}

/// Increments a counter whose name may be a formatted expression; the
/// name expression is only evaluated while recording is enabled:
///
/// ```
/// vqi_observe::count!(format!("demo.class.{}", 3), 1);
/// ```
#[macro_export]
macro_rules! count {
    ($name:expr, $by:expr) => {
        if $crate::enabled() {
            $crate::incr(::std::convert::AsRef::<str>::as_ref(&$name), $by as u64);
        }
    };
}

/// Serializes tests that toggle the global enabled flag or arm the
/// process-global journal: the registry is one per process, so a test
/// flipping `set_enabled` mid-flight would silently drop another
/// test's spans.
#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    #[test]
    fn disabled_instruments_record_nothing() {
        let _l = super::test_lock();
        super::set_enabled(false);
        super::incr("libtest.disabled.counter", 7);
        super::observe("libtest.disabled.hist", 7);
        super::gauge_add("libtest.disabled.gauge", 7);
        let s = super::snapshot();
        assert!(!s.counters.contains_key("libtest.disabled.counter"));
        assert!(!s.values.contains_key("libtest.disabled.hist"));
        assert!(!s.gauges.contains_key("libtest.disabled.gauge"));
    }

    #[test]
    fn time_returns_duration_even_when_disabled() {
        let _l = super::test_lock();
        super::set_enabled(false);
        let (v, d) = super::time("libtest.timed", || 41 + 1);
        assert_eq!(v, 42);
        assert!(d.as_nanos() > 0);
        assert!(!super::snapshot().spans.contains_key("libtest.timed"));
    }

    #[test]
    fn count_macro_defers_name_construction() {
        let _l = super::test_lock();
        super::set_enabled(true);
        super::count!(format!("libtest.class.{}", 2), 2);
        super::count!("libtest.plain", 1);
        super::set_enabled(false);
        let s = super::snapshot();
        assert_eq!(s.counters["libtest.class.2"], 2);
        assert_eq!(s.counters["libtest.plain"], 1);
    }
}
