//! The run-scoped trace journal.
//!
//! While the [`Registry`](crate::Registry) keeps *aggregates*
//! (histograms, counters, a path-keyed trace tree), the journal keeps
//! the *events themselves*: span begin/end pairs and instant markers,
//! each stamped with a [`TraceCtx`] — `run_id` (one per pipeline run),
//! `span_id` (one per span occurrence), `parent_id` (the enclosing
//! span occurrence). Parentage is explicit rather than implied by
//! thread-local nesting, which is what lets spans opened on
//! `vqi_graph::par` worker threads parent correctly under the span
//! that forked them: the executor captures [`current_ctx`] before
//! spawning and re-installs it on each worker via [`ctx_scope`].
//!
//! Storage is a **sharded, bounded ring buffer**: threads append to
//! one of [`SHARDS`] mutex-protected rings (picked by thread id, so a
//! thread's events stay in order within its shard) and the oldest
//! events are overwritten when a shard fills ([`journal_dropped`]
//! counts the losses). Recording is off by default; the disabled path
//! of every hook is one relaxed atomic load.
//!
//! On top of the raw events this module builds:
//!
//! * [`profile`] — per-run total vs. **self** time per span path,
//!   invocation counts, and the critical path;
//! * [`chrome_trace`] — the Chrome `trace_event` JSON format
//!   (`chrome://tracing`, Perfetto);
//! * [`folded_stacks`] — flamegraph collapsed-stacks text
//!   (`path;to;span <self_ns>`);
//! * [`validate_chrome_trace`] — a dependency-free checker (balanced
//!   begin/end per thread, monotone timestamps, resolvable parents)
//!   used by `ci.sh` and the CLI tests;
//! * [`event_multiset`] — an order-normalized `(kind, name, parent)`
//!   multiset, the comparison key of the thread-count-invariance
//!   tests.

use std::cell::Cell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};
use std::time::Instant;

/// Number of ring-buffer shards (threads map onto shards by id).
pub const SHARDS: usize = 8;

/// Default total journal capacity, in events, across all shards.
pub const DEFAULT_CAPACITY: usize = 1 << 16;

/// The explicit trace position handle: which run this is, which span
/// occurrence is open, and what that span's parent occurrence is.
///
/// A `TraceCtx` is `Copy` and meaningful on any thread — capture it
/// with [`current_ctx`] before handing work to another thread and
/// re-install it there with [`ctx_scope`]; spans opened inside the
/// scope parent under `span_id`. Id `0` means "none" everywhere.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceCtx {
    /// The run this context belongs to (`0` = outside any run).
    pub run_id: u64,
    /// The innermost open span occurrence (`0` = no open span).
    pub span_id: u64,
    /// The parent occurrence of `span_id` (`0` = root).
    pub parent_id: u64,
}

/// What a journal event marks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A span opened; `span_id` identifies the occurrence.
    Begin,
    /// The span occurrence `span_id` closed.
    End,
    /// A point event (injected fault, budget trip, retry, …) attached
    /// under `parent_id`.
    Instant,
}

impl EventKind {
    /// Short lowercase label (used by multisets and debugging).
    pub fn label(self) -> &'static str {
        match self {
            EventKind::Begin => "begin",
            EventKind::End => "end",
            EventKind::Instant => "instant",
        }
    }
}

/// One journal entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Global record sequence number (total order of recording).
    pub seq: u64,
    /// Nanoseconds since the process-wide journal epoch.
    pub ts_ns: u64,
    /// Small dense id of the recording thread.
    pub tid: u32,
    /// Begin / End / Instant.
    pub kind: EventKind,
    /// Run the event belongs to (`0` = ambient).
    pub run_id: u64,
    /// Span occurrence id (`0` for instants).
    pub span_id: u64,
    /// Enclosing span occurrence (`0` = root).
    pub parent_id: u64,
    /// Span or marker name.
    pub name: String,
}

// ---------------------------------------------------------------------------
// global state
// ---------------------------------------------------------------------------

/// Whether the journal is armed. Recording additionally requires the
/// registry's master enabled flag, so the common disabled path of an
/// instrumented site is exactly one relaxed load (the master flag).
static ARMED: AtomicBool = AtomicBool::new(false);

/// Span/run occurrence ids; `0` is reserved for "none".
static NEXT_SPAN: AtomicU64 = AtomicU64::new(1);
static NEXT_RUN: AtomicU64 = AtomicU64::new(1);
static NEXT_SEQ: AtomicU64 = AtomicU64::new(0);
static NEXT_TID: AtomicU32 = AtomicU32::new(0);
static DROPPED: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// The innermost trace context open on this thread.
    static CURRENT: Cell<TraceCtx> = const { Cell::new(TraceCtx { run_id: 0, span_id: 0, parent_id: 0 }) };
    /// Dense per-thread id (assigned on first journal record).
    static TID: Cell<u32> = const { Cell::new(u32::MAX) };
}

fn thread_index() -> u32 {
    TID.with(|t| {
        let v = t.get();
        if v != u32::MAX {
            return v;
        }
        let v = NEXT_TID.fetch_add(1, Ordering::Relaxed);
        t.set(v);
        v
    })
}

fn epoch() -> &'static Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now)
}

/// One bounded ring of events.
#[derive(Debug, Default)]
struct Shard {
    buf: Vec<Event>,
    /// Next overwrite position once `buf.len() == cap`.
    head: usize,
}

struct Journal {
    shards: [Mutex<Shard>; SHARDS],
    /// Per-shard capacity (total capacity / SHARDS, at least 1).
    shard_cap: AtomicU64,
}

impl Journal {
    fn global() -> &'static Journal {
        static GLOBAL: OnceLock<Journal> = OnceLock::new();
        GLOBAL.get_or_init(|| Journal {
            shards: std::array::from_fn(|_| Mutex::new(Shard::default())),
            shard_cap: AtomicU64::new((DEFAULT_CAPACITY / SHARDS) as u64),
        })
    }

    fn push(&self, e: Event) {
        let cap = (self.shard_cap.load(Ordering::Relaxed) as usize).max(1);
        let shard = &self.shards[e.tid as usize % SHARDS];
        let mut s = shard.lock().unwrap_or_else(PoisonError::into_inner);
        if s.buf.len() < cap {
            s.buf.push(e);
        } else {
            let head = s.head;
            s.buf[head] = e;
            s.head = (head + 1) % cap;
            DROPPED.fetch_add(1, Ordering::Relaxed);
        }
    }
}

// ---------------------------------------------------------------------------
// recording API (crate-internal hooks + public free functions)
// ---------------------------------------------------------------------------

/// Whether the journal is armed (independent of the master flag).
#[inline]
pub fn journal_enabled() -> bool {
    ARMED.load(Ordering::Relaxed)
}

/// Arms or disarms the journal. Recording also requires the master
/// [`set_enabled`](crate::set_enabled) flag, mirroring the registry.
pub fn set_journal_enabled(on: bool) {
    // initialize the epoch before the first event so timestamps are
    // comparable across threads from the very first record
    let _ = epoch();
    ARMED.store(on, Ordering::Relaxed);
}

/// Whether journal events would be recorded right now (master flag
/// AND armed).
#[inline]
pub fn journal_recording() -> bool {
    crate::enabled() && journal_enabled()
}

/// Sets the total journal capacity in events (split across shards)
/// and clears the journal.
pub fn set_journal_capacity(total: usize) {
    let j = Journal::global();
    j.shard_cap
        .store((total / SHARDS).max(1) as u64, Ordering::Relaxed);
    journal_reset();
}

/// Number of events overwritten because a shard ring was full.
pub fn journal_dropped() -> u64 {
    DROPPED.load(Ordering::Relaxed)
}

/// Clears all recorded events (capacity and ids are kept).
pub fn journal_reset() {
    let j = Journal::global();
    for s in &j.shards {
        let mut s = s.lock().unwrap_or_else(PoisonError::into_inner);
        s.buf.clear();
        s.head = 0;
    }
    DROPPED.store(0, Ordering::Relaxed);
}

/// A point-in-time copy of the journal, in recording order
/// (timestamp-major, sequence-minor — per-thread order is preserved).
pub fn journal_events() -> Vec<Event> {
    let j = Journal::global();
    let mut all: Vec<Event> = Vec::new();
    for s in &j.shards {
        let s = s.lock().unwrap_or_else(PoisonError::into_inner);
        all.extend(s.buf.iter().cloned());
    }
    all.sort_by_key(|e| (e.ts_ns, e.seq));
    all
}

fn record(kind: EventKind, run_id: u64, span_id: u64, parent_id: u64, name: &str) {
    let ts_ns = epoch().elapsed().as_nanos().min(u64::MAX as u128) as u64;
    let seq = NEXT_SEQ.fetch_add(1, Ordering::Relaxed);
    Journal::global().push(Event {
        seq,
        ts_ns,
        tid: thread_index(),
        kind,
        run_id,
        span_id,
        parent_id,
        name: name.to_string(),
    });
}

/// Live journal state of one span guard: the context it opened and the
/// context to restore when it closes.
#[derive(Debug)]
pub(crate) struct JournalSpan {
    ctx: TraceCtx,
    prev: TraceCtx,
}

/// Called by `SpanGuard::enter`: records a Begin event and installs
/// the new context. Returns `None` (a no-op) unless recording.
pub(crate) fn begin_span(name: &str) -> Option<JournalSpan> {
    if !journal_recording() {
        return None;
    }
    let prev = CURRENT.with(Cell::get);
    let ctx = TraceCtx {
        run_id: prev.run_id,
        span_id: NEXT_SPAN.fetch_add(1, Ordering::Relaxed),
        parent_id: prev.span_id,
    };
    CURRENT.with(|c| c.set(ctx));
    record(
        EventKind::Begin,
        ctx.run_id,
        ctx.span_id,
        ctx.parent_id,
        name,
    );
    Some(JournalSpan { ctx, prev })
}

/// Called by `SpanGuard::drop`: records the matching End event (even
/// if the journal was disarmed mid-span, so traces stay balanced) and
/// restores the previous context.
pub(crate) fn end_span(span: JournalSpan, name: &str) {
    record(
        EventKind::End,
        span.ctx.run_id,
        span.ctx.span_id,
        span.ctx.parent_id,
        name,
    );
    CURRENT.with(|c| c.set(span.prev));
}

/// The calling thread's innermost trace context (all zeros when not
/// recording or outside any span).
#[inline]
pub fn current_ctx() -> TraceCtx {
    if !journal_recording() {
        return TraceCtx::default();
    }
    CURRENT.with(Cell::get)
}

/// Re-installs a captured [`TraceCtx`] on this thread until the guard
/// drops. This is the cross-thread propagation primitive: a fork point
/// captures [`current_ctx`] and each worker wraps its closure in a
/// `ctx_scope`, so spans the closure opens parent under the forking
/// span instead of starting a fresh root on the worker thread.
pub fn ctx_scope(ctx: TraceCtx) -> CtxScope {
    if !journal_recording() || ctx == TraceCtx::default() {
        return CtxScope { prev: None };
    }
    let prev = CURRENT.with(Cell::get);
    CURRENT.with(|c| c.set(ctx));
    CtxScope { prev: Some(prev) }
}

/// Guard returned by [`ctx_scope`]; restores the previous context on
/// drop.
#[derive(Debug)]
pub struct CtxScope {
    prev: Option<TraceCtx>,
}

impl Drop for CtxScope {
    fn drop(&mut self) {
        if let Some(prev) = self.prev.take() {
            CURRENT.with(|c| c.set(prev));
        }
    }
}

/// Records an instant event (injected fault, budget trip, retry, …)
/// under the current context. No-op unless recording — callers that
/// must format a name should gate on [`journal_recording`] first.
#[inline]
pub fn instant(name: &str) {
    if !journal_recording() {
        return;
    }
    let c = CURRENT.with(Cell::get);
    record(EventKind::Instant, c.run_id, 0, c.span_id, name);
}

/// Opens a **run**: mints a fresh `run_id` (when the journal is
/// recording and no run is active on this thread) and opens a span
/// named `name` as the run's root. Nested calls — a pipeline invoked
/// from inside another instrumented run — keep the outer run id, so a
/// serving layer can attach one run per request and see everything
/// beneath it. Behaves exactly like [`span`](crate::span) when the
/// journal is disarmed.
pub fn run(name: &str) -> RunGuard {
    let prev = if journal_recording() {
        let cur = CURRENT.with(Cell::get);
        if cur.run_id == 0 {
            CURRENT.with(|c| {
                c.set(TraceCtx {
                    run_id: NEXT_RUN.fetch_add(1, Ordering::Relaxed),
                    ..cur
                })
            });
            Some(cur)
        } else {
            None
        }
    } else {
        None
    };
    RunGuard {
        span: Some(crate::span(name)),
        prev,
    }
}

/// A live run; closes the root span and leaves the run on drop.
#[derive(Debug)]
#[must_use = "a run ends when the guard drops; bind it with `let _run = ...`"]
pub struct RunGuard {
    span: Option<crate::SpanGuard>,
    prev: Option<TraceCtx>,
}

impl Drop for RunGuard {
    fn drop(&mut self) {
        // close the root span first (records its End event inside the
        // run), then restore the pre-run context
        self.span.take();
        if let Some(prev) = self.prev.take() {
            CURRENT.with(|c| c.set(prev));
        }
    }
}

// ---------------------------------------------------------------------------
// analysis: profile, multiset
// ---------------------------------------------------------------------------

/// Aggregate of one span path in a [`Profile`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProfileNode {
    /// Times the path completed.
    pub count: u64,
    /// Total nanoseconds on the path, children included.
    pub total_ns: u64,
    /// Nanoseconds on the path itself, direct children excluded.
    pub self_ns: u64,
}

/// A per-run (or whole-journal) profile: span paths with total/self
/// time and the critical path.
#[derive(Debug, Clone, Default)]
pub struct Profile {
    /// Aggregates keyed by `/`-joined span path.
    pub nodes: BTreeMap<String, ProfileNode>,
    /// The chain of heaviest children from the heaviest root, as
    /// `(path, total_ns)` pairs.
    pub critical_path: Vec<(String, u64)>,
}

/// Resolved identity of one span occurrence.
struct SpanInfo {
    name: String,
    parent_id: u64,
    begin_ns: u64,
    dur_ns: Option<u64>,
}

fn span_infos(events: &[Event]) -> BTreeMap<u64, SpanInfo> {
    let mut spans: BTreeMap<u64, SpanInfo> = BTreeMap::new();
    for e in events {
        match e.kind {
            EventKind::Begin => {
                spans.insert(
                    e.span_id,
                    SpanInfo {
                        name: e.name.clone(),
                        parent_id: e.parent_id,
                        begin_ns: e.ts_ns,
                        dur_ns: None,
                    },
                );
            }
            EventKind::End => {
                if let Some(info) = spans.get_mut(&e.span_id) {
                    info.dur_ns = Some(e.ts_ns.saturating_sub(info.begin_ns));
                }
            }
            EventKind::Instant => {}
        }
    }
    spans
}

fn path_of(id: u64, spans: &BTreeMap<u64, SpanInfo>, memo: &mut BTreeMap<u64, String>) -> String {
    if id == 0 {
        return String::new();
    }
    if let Some(p) = memo.get(&id) {
        return p.clone();
    }
    let path = match spans.get(&id) {
        None => String::new(), // parent fell out of the ring: treat as root
        Some(info) => {
            let parent = path_of(info.parent_id, spans, memo);
            if parent.is_empty() {
                info.name.clone()
            } else {
                format!("{parent}/{}", info.name)
            }
        }
    };
    memo.insert(id, path.clone());
    path
}

/// Builds a [`Profile`] from journal events, keeping only runs with
/// `run_id == run` (or every event when `run` is `None`). Spans still
/// open (no End recorded) are skipped.
pub fn profile(events: &[Event], run: Option<u64>) -> Profile {
    let selected: Vec<Event> = events
        .iter()
        .filter(|e| run.is_none_or(|r| e.run_id == r))
        .cloned()
        .collect();
    let spans = span_infos(&selected);
    let mut memo = BTreeMap::new();
    let mut profile = Profile::default();
    for (&id, info) in &spans {
        let Some(dur) = info.dur_ns else { continue };
        let path = path_of(id, &spans, &mut memo);
        if path.is_empty() {
            continue;
        }
        let node = profile.nodes.entry(path).or_default();
        node.count += 1;
        node.total_ns += dur;
    }
    // self time: total minus the totals of direct children
    let totals: Vec<(String, u64)> = profile
        .nodes
        .iter()
        .map(|(p, n)| (p.clone(), n.total_ns))
        .collect();
    for (path, node) in profile.nodes.iter_mut() {
        let child_total: u64 = totals
            .iter()
            .filter(|(p, _)| {
                p.len() > path.len()
                    && p.starts_with(path.as_str())
                    && p.as_bytes()[path.len()] == b'/'
                    && !p[path.len() + 1..].contains('/')
            })
            .map(|(_, t)| t)
            .sum();
        node.self_ns = node.total_ns.saturating_sub(child_total);
    }
    // critical path: heaviest root, then heaviest direct child, …
    let mut at: Option<(String, u64)> = profile
        .nodes
        .iter()
        .filter(|(p, _)| !p.contains('/'))
        .max_by_key(|(_, n)| n.total_ns)
        .map(|(p, n)| (p.clone(), n.total_ns));
    while let Some((path, total)) = at.take() {
        profile.critical_path.push((path.clone(), total));
        at = profile
            .nodes
            .iter()
            .filter(|(p, _)| {
                p.len() > path.len()
                    && p.starts_with(path.as_str())
                    && p.as_bytes()[path.len()] == b'/'
                    && !p[path.len() + 1..].contains('/')
            })
            .max_by_key(|(_, n)| n.total_ns)
            .map(|(p, n)| (p.clone(), n.total_ns));
    }
    profile
}

impl Profile {
    /// Renders the profile as an aligned table plus the critical path.
    pub fn render(&self) -> String {
        use crate::report::fmt_ns;
        let mut out = String::from("== profile (total vs self) ==\n");
        if self.nodes.is_empty() {
            out.push_str("(no completed spans in the journal)\n");
            return out;
        }
        let name_w = self
            .nodes
            .keys()
            .map(|p| 2 * p.matches('/').count() + p.rsplit('/').next().unwrap_or(p).len())
            .max()
            .unwrap_or(4)
            .max(4);
        out.push_str(&format!(
            "{:<name_w$}  {:>7}  {:>10}  {:>10}\n",
            "path", "count", "total", "self"
        ));
        for (path, n) in &self.nodes {
            let depth = path.matches('/').count();
            let leaf = path.rsplit('/').next().unwrap_or(path);
            let indented = format!("{}{leaf}", "  ".repeat(depth));
            out.push_str(&format!(
                "{indented:<name_w$}  {:>7}  {:>10}  {:>10}\n",
                n.count,
                fmt_ns(n.total_ns as f64),
                fmt_ns(n.self_ns as f64),
            ));
        }
        if !self.critical_path.is_empty() {
            let chain: Vec<String> = self
                .critical_path
                .iter()
                .map(|(p, t)| {
                    format!(
                        "{} ({})",
                        p.rsplit('/').next().unwrap_or(p),
                        fmt_ns(*t as f64)
                    )
                })
                .collect();
            out.push_str(&format!("critical path: {}\n", chain.join(" -> ")));
        }
        out
    }
}

/// Order-normalized event multiset: counts keyed by
/// `kind|name|parent-name`. Timestamps, ids, and thread placement are
/// erased, so two runs doing the same work at different thread counts
/// produce the same multiset — the invariance the pipeline tests
/// assert. End events are skipped (they mirror their Begin).
pub fn event_multiset(events: &[Event]) -> BTreeMap<String, u64> {
    let spans = span_infos(events);
    let parent_name = |id: u64| -> &str {
        if id == 0 {
            return "";
        }
        spans.get(&id).map(|s| s.name.as_str()).unwrap_or("?")
    };
    let mut multiset: BTreeMap<String, u64> = BTreeMap::new();
    for e in events {
        if e.kind == EventKind::End {
            continue;
        }
        let key = format!("{}|{}|{}", e.kind.label(), e.name, parent_name(e.parent_id));
        *multiset.entry(key).or_default() += 1;
    }
    multiset
}

// ---------------------------------------------------------------------------
// exporters
// ---------------------------------------------------------------------------

/// Serializes events in the Chrome `trace_event` JSON format (one
/// event object per line inside `traceEvents`). Span pairs are
/// emitted as `ph:"B"`/`ph:"E"` on the recording thread's `tid`;
/// instants as `ph:"i"`. The explicit ids travel in `args`. Spans
/// missing either side of their pair (still open, or begin dropped
/// from the ring) are skipped and unresolvable parents are remapped
/// to `0`, so the output is always balanced and well-parented.
pub fn chrome_trace(events: &[Event]) -> String {
    use crate::json::escape;
    let spans = span_infos(events);
    let complete = |id: u64| spans.get(&id).is_some_and(|s| s.dur_ns.is_some());
    let resolve_parent = |id: u64| if complete(id) { id } else { 0 };
    let mut sorted: Vec<&Event> = events.iter().collect();
    sorted.sort_by_key(|e| (e.ts_ns, e.seq));
    let mut lines: Vec<String> = Vec::with_capacity(sorted.len());
    for e in &sorted {
        let (ph, extra) = match e.kind {
            EventKind::Begin => {
                if !complete(e.span_id) {
                    continue;
                }
                ("B", String::new())
            }
            EventKind::End => {
                if !complete(e.span_id) {
                    continue;
                }
                ("E", String::new())
            }
            EventKind::Instant => ("i", ",\"s\":\"t\"".to_string()),
        };
        lines.push(format!(
            "{{\"name\":\"{}\",\"cat\":\"vqi\",\"ph\":\"{ph}\"{extra},\"pid\":{},\"tid\":{},\"ts\":{}.{:03},\"args\":{{\"run\":{},\"span\":{},\"parent\":{}}}}}",
            escape(&e.name),
            e.run_id.max(1),
            e.tid,
            e.ts_ns / 1_000,
            e.ts_ns % 1_000,
            e.run_id,
            e.span_id,
            resolve_parent(e.parent_id),
        ));
    }
    format!(
        "{{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n{}\n]}}\n",
        lines.join(",\n")
    )
}

/// Serializes the journal as flamegraph collapsed stacks: one line per
/// span path with positive self time, `path;to;span <self_ns>`.
pub fn folded_stacks(events: &[Event]) -> String {
    let p = profile(events, None);
    let mut out = String::new();
    for (path, node) in &p.nodes {
        if node.self_ns > 0 {
            out.push_str(&format!("{} {}\n", path.replace('/', ";"), node.self_ns));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// validation
// ---------------------------------------------------------------------------

/// Summary returned by a successful [`validate_chrome_trace`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceStats {
    /// Total events parsed.
    pub events: usize,
    /// Completed spans (matched begin/end pairs).
    pub spans: usize,
    /// Instant events.
    pub instants: usize,
}

/// One parsed trace-event line.
struct ParsedEvent {
    name: String,
    ph: char,
    pid: u64,
    tid: u64,
    ts: f64,
    span: u64,
    parent: u64,
}

fn parse_event_line(line: &str) -> Result<ParsedEvent, String> {
    let str_field = |key: &str| -> Option<String> {
        let tag = format!("\"{key}\":\"");
        let start = line.find(&tag)? + tag.len();
        let rest = &line[start..];
        // our emitter escapes quotes, so an unescaped quote ends the value
        let mut end = 0;
        let bytes = rest.as_bytes();
        while end < bytes.len() {
            if bytes[end] == b'\\' {
                end += 2;
                continue;
            }
            if bytes[end] == b'"' {
                break;
            }
            end += 1;
        }
        Some(rest[..end].to_string())
    };
    let num_field = |key: &str| -> Option<f64> {
        let tag = format!("\"{key}\":");
        let start = line.find(&tag)? + tag.len();
        let rest: String = line[start..]
            .chars()
            .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
            .collect();
        rest.parse().ok()
    };
    Ok(ParsedEvent {
        name: str_field("name").ok_or_else(|| format!("no name in: {line}"))?,
        ph: str_field("ph")
            .and_then(|s| s.chars().next())
            .ok_or_else(|| format!("no ph in: {line}"))?,
        pid: num_field("pid").ok_or("no pid")? as u64,
        tid: num_field("tid").ok_or("no tid")? as u64,
        ts: num_field("ts").ok_or("no ts")?,
        span: num_field("span").ok_or("no args.span")? as u64,
        parent: num_field("parent").ok_or("no args.parent")? as u64,
    })
}

/// Validates a [`chrome_trace`] document: every event line parses,
/// timestamps are monotone in file order, begin/end pairs balance
/// with stack (LIFO) discipline per `(pid, tid)`, span ids are unique,
/// and every `parent` id resolves to a span in the file (or `0`).
pub fn validate_chrome_trace(json: &str) -> Result<TraceStats, String> {
    let body = json
        .split("\"traceEvents\":[")
        .nth(1)
        .ok_or("no traceEvents array")?;
    let mut events: Vec<ParsedEvent> = Vec::new();
    for line in body.lines() {
        let line = line.trim().trim_end_matches(',');
        if line.starts_with("{\"name\"") {
            events.push(parse_event_line(line)?);
        }
    }
    let mut stats = TraceStats {
        events: events.len(),
        ..Default::default()
    };
    // pass 1: span-id universe + uniqueness
    let mut span_ids = std::collections::BTreeSet::new();
    for e in &events {
        if e.ph == 'B' && !span_ids.insert(e.span) {
            return Err(format!("duplicate span id {} ({})", e.span, e.name));
        }
    }
    // pass 2: monotone timestamps, per-(pid,tid) stack discipline,
    // parent resolution
    let mut last_ts = f64::NEG_INFINITY;
    let mut stacks: BTreeMap<(u64, u64), Vec<(u64, String)>> = BTreeMap::new();
    for e in &events {
        if e.ts < last_ts {
            return Err(format!(
                "timestamp went backwards at {} ({} < {last_ts})",
                e.name, e.ts
            ));
        }
        last_ts = e.ts;
        if e.parent != 0 && !span_ids.contains(&e.parent) {
            return Err(format!(
                "parent {} of {} does not resolve to any span",
                e.parent, e.name
            ));
        }
        let stack = stacks.entry((e.pid, e.tid)).or_default();
        match e.ph {
            'B' => stack.push((e.span, e.name.clone())),
            'E' => match stack.pop() {
                Some((id, name)) if id == e.span && name == e.name => stats.spans += 1,
                Some((id, name)) => {
                    return Err(format!(
                        "end of {} (span {}) closes {name} (span {id}) on tid {}",
                        e.name, e.span, e.tid
                    ))
                }
                None => return Err(format!("end of {} with empty stack", e.name)),
            },
            'i' => stats.instants += 1,
            other => return Err(format!("unknown phase '{other}'")),
        }
    }
    for ((pid, tid), stack) in &stacks {
        if let Some((_, name)) = stack.last() {
            return Err(format!("unbalanced span {name} left open on {pid}/{tid}"));
        }
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::MutexGuard;

    /// The journal is process-global; serialize the tests that arm it
    /// (shared with every other test that toggles the enabled flag).
    fn lock() -> MutexGuard<'static, ()> {
        crate::test_lock()
    }

    fn arm() {
        crate::set_enabled(true);
        set_journal_enabled(true);
        journal_reset();
    }

    fn disarm() {
        set_journal_enabled(false);
        crate::set_enabled(false);
    }

    #[test]
    fn spans_record_balanced_events_with_parentage() {
        let _l = lock();
        arm();
        {
            let _run = run("jtest.run");
            let _a = crate::span("jtest.stage");
            instant("jtest.marker");
        }
        disarm();
        let events = journal_events();
        let begins: Vec<&Event> = events
            .iter()
            .filter(|e| e.kind == EventKind::Begin)
            .collect();
        let ends: Vec<&Event> = events.iter().filter(|e| e.kind == EventKind::End).collect();
        assert_eq!(begins.len(), 2);
        assert_eq!(ends.len(), 2);
        let root = begins.iter().find(|e| e.name == "jtest.run").unwrap();
        let stage = begins.iter().find(|e| e.name == "jtest.stage").unwrap();
        assert_ne!(root.run_id, 0, "run must mint a run id");
        assert_eq!(stage.run_id, root.run_id);
        assert_eq!(stage.parent_id, root.span_id);
        let marker = events
            .iter()
            .find(|e| e.kind == EventKind::Instant)
            .unwrap();
        assert_eq!(marker.parent_id, stage.span_id);
        assert_eq!(marker.run_id, root.run_id);
    }

    #[test]
    fn disabled_journal_records_nothing() {
        let _l = lock();
        journal_reset();
        crate::set_enabled(true);
        set_journal_enabled(false);
        {
            let _s = crate::span("jtest.silent");
            instant("jtest.silent.marker");
        }
        crate::set_enabled(false);
        assert!(journal_events().is_empty());
        assert_eq!(current_ctx(), TraceCtx::default());
    }

    #[test]
    fn ctx_scope_propagates_parentage_across_threads() {
        let _l = lock();
        arm();
        let (fork_span_id, worker_run) = {
            let _run = run("jtest.fork");
            let ctx = current_ctx();
            assert_ne!(ctx.span_id, 0);
            let handle = std::thread::spawn(move || {
                let _scope = ctx_scope(ctx);
                let _s = crate::span("jtest.worker");
            });
            handle.join().unwrap();
            (ctx.span_id, ctx.run_id)
        };
        disarm();
        let events = journal_events();
        let worker = events
            .iter()
            .find(|e| e.kind == EventKind::Begin && e.name == "jtest.worker")
            .expect("worker span recorded");
        assert_eq!(worker.parent_id, fork_span_id, "worker parents under fork");
        assert_eq!(worker.run_id, worker_run, "worker inherits the run");
    }

    #[test]
    fn nested_run_keeps_the_outer_run_id() {
        let _l = lock();
        arm();
        {
            let _outer = run("jtest.outer_run");
            let outer_id = current_ctx().run_id;
            let _inner = run("jtest.inner_run");
            assert_eq!(current_ctx().run_id, outer_id);
        }
        disarm();
        let events = journal_events();
        let runs: std::collections::BTreeSet<u64> = events.iter().map(|e| e.run_id).collect();
        assert_eq!(runs.len(), 1, "one run id for nested runs: {runs:?}");
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        let _l = lock();
        arm();
        set_journal_capacity(SHARDS * 4);
        for i in 0..100 {
            instant(&format!("jtest.flood.{i}"));
        }
        let events = journal_events();
        let dropped = journal_dropped();
        disarm();
        set_journal_capacity(DEFAULT_CAPACITY);
        assert!(events.len() <= SHARDS * 4);
        assert!(dropped > 0, "flood must overwrite");
        // the survivors are the most recent events of the thread
        assert!(events.iter().any(|e| e.name == "jtest.flood.99"));
    }

    #[test]
    fn profile_computes_self_time_and_critical_path() {
        let _l = lock();
        arm();
        {
            let _run = run("jtest.prof");
            {
                let _a = crate::span("jtest.heavy");
                std::thread::sleep(std::time::Duration::from_millis(4));
            }
            {
                let _b = crate::span("jtest.light");
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        }
        disarm();
        let events = journal_events();
        let p = profile(&events, None);
        let root = &p.nodes["jtest.prof"];
        let heavy = &p.nodes["jtest.prof/jtest.heavy"];
        let light = &p.nodes["jtest.prof/jtest.light"];
        assert_eq!(root.count, 1);
        assert!(root.total_ns >= heavy.total_ns + light.total_ns);
        assert_eq!(
            root.self_ns,
            root.total_ns - heavy.total_ns - light.total_ns
        );
        assert!(heavy.total_ns > light.total_ns);
        // critical path descends into the heavy child
        assert_eq!(p.critical_path[0].0, "jtest.prof");
        assert_eq!(p.critical_path[1].0, "jtest.prof/jtest.heavy");
        let rendered = p.render();
        assert!(rendered.contains("critical path"));
        assert!(rendered.contains("jtest.heavy"));
    }

    #[test]
    fn chrome_trace_round_trips_through_the_validator() {
        let _l = lock();
        arm();
        {
            let _run = run("jtest.chrome");
            {
                let _a = crate::span("jtest.stage_a");
                instant("jtest.fault");
            }
            let _b = crate::span("jtest.stage_b");
        }
        disarm();
        let events = journal_events();
        let json = chrome_trace(&events);
        let stats = validate_chrome_trace(&json).expect("emitted trace must validate");
        assert_eq!(stats.spans, 3, "run + two stages");
        assert_eq!(stats.instants, 1);
        assert!(json.contains("\"ph\":\"B\""));
        assert!(json.contains("\"s\":\"t\""), "instant scope marker");
    }

    #[test]
    fn validator_rejects_malformed_traces() {
        let ok = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n\
            {\"name\":\"a\",\"cat\":\"vqi\",\"ph\":\"B\",\"pid\":1,\"tid\":0,\"ts\":1.000,\"args\":{\"run\":1,\"span\":1,\"parent\":0}},\n\
            {\"name\":\"a\",\"cat\":\"vqi\",\"ph\":\"E\",\"pid\":1,\"tid\":0,\"ts\":2.000,\"args\":{\"run\":1,\"span\":1,\"parent\":0}}\n]}";
        assert!(validate_chrome_trace(ok).is_ok());
        // unbalanced: begin without end
        let unbalanced = ok.replace(
            ",\n{\"name\":\"a\",\"cat\":\"vqi\",\"ph\":\"E\"",
            "\n]}#{\"name\":\"a\",\"cat\":\"vqi\",\"ph\":\"E\"",
        );
        assert!(validate_chrome_trace(&unbalanced.split('#').next().unwrap()).is_err());
        // backwards timestamp
        let backwards = ok.replace("\"ts\":2.000", "\"ts\":0.500");
        assert!(validate_chrome_trace(&backwards).is_err());
        // dangling parent
        let dangling = ok.replace("\"span\":1,\"parent\":0", "\"span\":1,\"parent\":77");
        assert!(validate_chrome_trace(&dangling).is_err());
    }

    #[test]
    fn folded_stacks_use_self_time() {
        let _l = lock();
        arm();
        {
            let _run = run("jtest.folded");
            let _a = crate::span("jtest.inner");
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        disarm();
        let folded = folded_stacks(&journal_events());
        assert!(folded.contains("jtest.folded;jtest.inner "));
        for line in folded.lines() {
            let (_, weight) = line.rsplit_once(' ').unwrap();
            assert!(weight.parse::<u64>().unwrap() > 0);
        }
    }

    #[test]
    fn event_multiset_normalizes_order_and_ids() {
        let _l = lock();
        arm();
        let record_pair = || {
            let _run = run("jtest.ms");
            let _a = crate::span("jtest.ms.stage");
            instant("jtest.ms.marker");
        };
        record_pair();
        let first = event_multiset(&journal_events());
        journal_reset();
        record_pair();
        let second = event_multiset(&journal_events());
        disarm();
        assert_eq!(first, second, "ids/timestamps must not leak into the key");
        assert_eq!(first["begin|jtest.ms.stage|jtest.ms"], 1);
        assert_eq!(first["instant|jtest.ms.marker|jtest.ms.stage"], 1);
    }
}
