//! The crash-matrix property suite (DESIGN §13): a child-run harness
//! proving that for every crash point in the update path, recovery
//! yields a snapshot whose collection digest and subsequent
//! `select`/`query` outputs are bit-identical to an uncrashed run.
//!
//! Shape: the parent test re-invokes its own test binary with
//! `--exact crash_tests::crash_child_entry` and environment variables
//! selecting the durability directory, seed, crash site, and rate. The
//! child boots a durable service, arms the crash plan, and applies a
//! deterministic batch sequence; an injected crash is a real
//! `process::abort` (no unwinding, no flushes — the closest simulation
//! of `kill -9` available without unsafe code). The parent then
//! recovers from the directory at thread caps 1, 2, and 4 and compares
//! against a reference service that applied the same durable prefix
//! without crashing.

use crate::durable::{collection_digest, DurabilityConfig};
use crate::service::{pattern_codes, reference_select, SelectorKind, ServeConfig, VqiService};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::process::Command;
use vqi_core::budget::PatternBudget;
use vqi_core::repo::{BatchUpdate, GraphCollection};
use vqi_datasets::{aids_like, MoleculeParams};
use vqi_graph::Graph;
use vqi_runtime::fault::{self, FaultPlan};

const BATCHES: u64 = 5;
const SITES: [&str; 4] = [
    "wal.append.mid",
    "wal.append.torn",
    "serve.update.pre_publish",
    "wal.checkpoint.mid",
];

fn molecules(count: usize, seed: u64) -> Vec<Graph> {
    aids_like(MoleculeParams {
        count,
        seed,
        max_rings: 1,
        max_chains: 2,
        max_chain_len: 2,
    })
}

fn initial_collection(seed: u64) -> GraphCollection {
    GraphCollection::new(molecules(4, seed))
}

/// The deterministic batch sequence both the child and the reference
/// replay: batch `i` adds one molecule; every second batch also
/// tombstones an early slot.
fn batch_for(seed: u64, i: u64) -> BatchUpdate {
    let mut b = BatchUpdate::adding(molecules(1, seed.wrapping_mul(1000) + i));
    if i % 2 == 0 {
        b.removals.push((i / 2 - 1) as usize);
    }
    b
}

fn durability() -> DurabilityConfig {
    DurabilityConfig {
        checkpoint_every: 2,
        fsync: true,
        keep_checkpoints: 2,
    }
}

fn acks_path(dir: &Path) -> PathBuf {
    dir.join("acks.txt")
}

fn run_child(dir: &Path, seed: u64, site: &str, rate: f64) {
    let service = VqiService::with_durability(
        initial_collection(seed),
        ServeConfig::default(),
        dir,
        durability(),
    )
    .expect("child bootstrap");
    // arm crashes only after bootstrap: the matrix exercises the
    // *update* path (a bootstrap crash would leave nothing to recover,
    // which the durable tests cover separately)
    fault::set_plan(FaultPlan {
        seed,
        crash_rate: rate,
        ..Default::default()
    });
    fault::set_crash_site(Some(site));
    for i in 1..=BATCHES {
        let resp = service
            .update(1, batch_for(seed, i), None)
            .expect("child update");
        // acknowledge only after the epoch published: the durable
        // prefix the parent recovers must be at least this long
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .create(true)
            .open(acks_path(dir))
            .expect("acks file");
        writeln!(f, "{}", resp.outcome.value.epoch).expect("ack write");
    }
    fault::reset();
}

/// Child entry: a no-op unless the parent armed it via environment.
#[test]
fn crash_child_entry() {
    let Ok(dir) = std::env::var("VQI_CRASH_DIR") else {
        return;
    };
    let seed: u64 = std::env::var("VQI_CRASH_SEED")
        .expect("seed")
        .parse()
        .expect("seed u64");
    let site = std::env::var("VQI_CRASH_SITE").expect("site");
    let rate: f64 = std::env::var("VQI_CRASH_RATE")
        .expect("rate")
        .parse()
        .expect("rate f64");
    run_child(Path::new(&dir), seed, &site, rate);
}

fn max_acked_epoch(dir: &Path) -> u64 {
    std::fs::read_to_string(acks_path(dir))
        .unwrap_or_default()
        .lines()
        .filter_map(|l| l.trim().parse::<u64>().ok())
        .max()
        .unwrap_or(0)
}

fn spawn_child(dir: &Path, seed: u64, site: &str, rate: f64) {
    let exe = std::env::current_exe().expect("test binary path");
    let out = Command::new(exe)
        .args([
            "--exact",
            "crash_tests::crash_child_entry",
            "--test-threads",
            "1",
            "--nocapture",
        ])
        .env("VQI_CRASH_DIR", dir)
        .env("VQI_CRASH_SEED", seed.to_string())
        .env("VQI_CRASH_SITE", site)
        .env("VQI_CRASH_RATE", rate.to_string())
        .output()
        .expect("spawn child");
    // legitimate endings: a clean pass (no crash point fired) or the
    // injected abort (SIGABRT on unix; the crash message otherwise —
    // libtest's capture dies with the abort, hence --nocapture above);
    // anything else is a real child failure
    #[cfg(unix)]
    let aborted = {
        use std::os::unix::process::ExitStatusExt;
        out.status.signal() == Some(6)
    };
    #[cfg(not(unix))]
    let aborted = String::from_utf8_lossy(&out.stderr).contains("injected crash");
    assert!(
        out.status.success() || aborted,
        "child (seed {seed}, site {site}) failed for a non-crash reason: {}\n{}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
}

/// The headline invariant, seeds × sites × thread caps: recovery after
/// any injected crash is bit-identical — collection digest, `select`
/// pattern codes, and `query` matches — to an uncrashed service that
/// applied the same durable prefix.
#[test]
fn crash_matrix_recovers_bit_identical_state() {
    let budget = PatternBudget::new(3, 3, 5);
    for seed in 0..12u64 {
        for site in SITES {
            let dir = std::env::temp_dir().join(format!(
                "vqi_crash_{seed}_{}_{}",
                site.replace('.', "_"),
                std::process::id()
            ));
            let _ = std::fs::remove_dir_all(&dir);
            std::fs::create_dir_all(&dir).expect("crash dir");
            // checkpoints happen on 2 of 5 epochs, so their site needs
            // a higher rate to fire across enough seeds
            let rate = if site == "wal.checkpoint.mid" { 0.8 } else { 0.45 };
            spawn_child(&dir, seed, site, rate);

            let acked = max_acked_epoch(&dir);
            for cap in [1usize, 2, 4] {
                vqi_graph::par::set_thread_cap(cap);
                let (service, report) =
                    VqiService::recover(&dir, ServeConfig::default(), durability())
                        .expect("recover");
                assert!(
                    report.final_epoch >= acked,
                    "seed {seed} site {site}: acknowledged epoch {acked} lost \
                     (recovered only to {})",
                    report.final_epoch
                );
                assert!(report.final_epoch <= BATCHES);
                // the uncrashed reference over the same durable prefix
                let mut reference = initial_collection(seed);
                for i in 1..=report.final_epoch {
                    reference.apply(batch_for(seed, i));
                }
                let pinned = service.store().pin();
                assert_eq!(pinned.epoch(), report.final_epoch);
                assert_eq!(
                    collection_digest(pinned.collection()),
                    collection_digest(&reference),
                    "seed {seed} site {site} cap {cap}: collection digest diverged"
                );
                // select bit-identity
                let sel = service
                    .select(1, &SelectorKind::Catapult, &budget, None)
                    .expect("select");
                let want = reference_select(&reference, &SelectorKind::Catapult, &budget);
                assert_eq!(
                    pattern_codes(&sel.outcome.value),
                    pattern_codes(&want),
                    "seed {seed} site {site} cap {cap}: select diverged"
                );
                // query bit-identity, against a fresh reference service
                let probe = molecules(1, seed.wrapping_mul(1000) + 1)
                    .pop()
                    .expect("probe");
                let got = service.query(2, &probe, 10, None).expect("query");
                let reference_service =
                    VqiService::new(reference.clone(), ServeConfig::default());
                let want_q = reference_service.query(2, &probe, 10, None).expect("query");
                assert_eq!(
                    got.outcome.value, want_q.outcome.value,
                    "seed {seed} site {site} cap {cap}: query diverged"
                );
                vqi_graph::par::set_thread_cap(0);
            }
            std::fs::remove_dir_all(&dir).ok();
        }
    }
}

/// Satellite: racing updaters must publish epochs in lock-acquisition
/// order with no epoch skipped or reused — and, with durability on, the
/// WAL must hold exactly that epoch sequence (recovery replays it back
/// to the final published collection).
#[test]
fn concurrent_updates_publish_contiguous_epochs_in_lock_order() {
    let dir = std::env::temp_dir().join(format!("vqi_epoch_order_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    const THREADS: u64 = 2;
    const PER_THREAD: u64 = 10;
    let service = std::sync::Arc::new(
        VqiService::with_durability(
            initial_collection(77),
            ServeConfig::default(),
            &dir,
            DurabilityConfig {
                checkpoint_every: 4,
                ..durability()
            },
        )
        .expect("bootstrap"),
    );
    let mut handles = Vec::new();
    for t in 0..THREADS {
        let service = std::sync::Arc::clone(&service);
        handles.push(std::thread::spawn(move || {
            let mut epochs = Vec::new();
            for i in 0..PER_THREAD {
                let batch = BatchUpdate::adding(molecules(1, 7000 + t * 100 + i));
                let resp = service.update(t, batch, None).expect("update");
                epochs.push(resp.outcome.value.epoch);
            }
            epochs
        }));
    }
    let per_thread: Vec<Vec<u64>> = handles
        .into_iter()
        .map(|h| h.join().expect("updater thread"))
        .collect();
    // each thread saw strictly increasing epochs (publishes happened
    // in its own submission order)
    for (t, epochs) in per_thread.iter().enumerate() {
        assert!(
            epochs.windows(2).all(|w| w[0] < w[1]),
            "thread {t} observed non-increasing epochs: {epochs:?}"
        );
    }
    // and together they used every epoch in 1..=N exactly once
    let mut all: Vec<u64> = per_thread.iter().flatten().copied().collect();
    all.sort_unstable();
    assert_eq!(
        all,
        (1..=THREADS * PER_THREAD).collect::<Vec<_>>(),
        "epochs must be contiguous, none skipped or reused"
    );
    let final_digest = collection_digest(service.store().pin().collection());
    drop(service);
    // the WAL agrees: recovery replays the same contiguous sequence
    let (recovered, report) =
        VqiService::recover(&dir, ServeConfig::default(), durability()).expect("recover");
    assert_eq!(report.final_epoch, THREADS * PER_THREAD);
    assert_eq!(
        collection_digest(recovered.store().pin().collection()),
        final_digest
    );
    drop(recovered);
    std::fs::remove_dir_all(&dir).ok();
}
