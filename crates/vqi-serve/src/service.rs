//! The service: endpoints, maintainer, and the snapshot-isolation
//! contract tying them together.
//!
//! Request lifecycle (DESIGN §10):
//!
//! 1. a run-scoped trace journal run opens (`serve.<endpoint>`), so the
//!    request's spans — queueing included — share one run id;
//! 2. admission: acquire an execution slot or wait, bounded by the
//!    request's [`Budget`] deadline;
//! 3. pin: clone the current snapshot `Arc`. Everything after this
//!    point reads only the pinned collection;
//! 4. work: selector pipeline / per-graph embedding counts / update
//!    application, all budget-aware and anytime;
//! 5. respond: `PipelineOutcome` (`Complete` or `Degraded`), the pinned
//!    snapshot (so callers can verify against exactly what was read),
//!    and a latency histogram observation.
//!
//! Updates never touch a published collection: the maintainer owns a
//! private copy (or the MIDAS state), applies the batch there under its
//! own lock, and publishes a clone as the next epoch. Readers racing an
//! update therefore see either the old or the new epoch in full.

use crate::admission::{Admission, AdmissionConfig, Admitted};
use crate::cache::{CollectionFingerprint, PatternSetCache, SelectKey};
use crate::durable::{self, DurabilityConfig, DurableLog, RecoveryReport};
use crate::snapshot::{Snapshot, SnapshotStore};
use catapult::Catapult;
use midas::{CensusMode, Midas, MidasConfig};
use std::collections::BTreeSet;
use std::sync::{Arc, Mutex};
use std::time::Instant;
use vqi_core::budget::PatternBudget;
use vqi_core::pattern::PatternSet;
use vqi_core::repo::{BatchUpdate, GraphCollection, GraphRepository};
use vqi_core::selector::{PatternSelector, RandomSelector};
use vqi_core::{Budget, Completeness, Degradation, PipelineOutcome};
use vqi_graph::iso::{count_embeddings_ctrl, MatchOptions};
use vqi_graph::Graph;
use vqi_modular::ModularPipeline;
use vqi_runtime::VqiError;

/// Which selector a `select` request runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SelectorKind {
    /// CATAPULT with its default configuration.
    Catapult,
    /// The standard modular assembly.
    Modular,
    /// The random baseline with the given seed.
    Random {
        /// RNG seed (part of the cache key).
        seed: u64,
    },
}

impl SelectorKind {
    /// Cache-key discriminator.
    pub fn tag(&self) -> String {
        match self {
            SelectorKind::Catapult => "catapult".into(),
            SelectorKind::Modular => "modular".into(),
            SelectorKind::Random { seed } => format!("random:{seed}"),
        }
    }
}

/// How `update` maintains derived state.
#[derive(Debug, Clone)]
pub enum MaintenanceMode {
    /// Apply batches to the collection only; selections always recompute
    /// (or hit the cache) on the current snapshot.
    ApplyOnly,
    /// Run MIDAS incremental maintenance alongside each batch, keeping a
    /// canned pattern set warm.
    Midas {
        /// Budget of the maintained pattern set.
        budget: PatternBudget,
        /// MIDAS tuning.
        config: MidasConfig,
    },
}

/// Service configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Admission limits.
    pub admission: AdmissionConfig,
    /// Pattern-set cache capacity (entries; 0 disables).
    pub cache_capacity: usize,
    /// Deadline applied to requests that do not carry their own
    /// (`0` = unlimited).
    pub default_deadline_ms: u64,
    /// Maintainer flavor.
    pub maintenance: MaintenanceMode,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            admission: AdmissionConfig::default(),
            cache_capacity: 32,
            default_deadline_ms: 0,
            maintenance: MaintenanceMode::ApplyOnly,
        }
    }
}

/// Hard request failures. Budget trips are *not* errors — they surface
/// as `Degraded` outcomes; this enum is overload and fail-fast only.
#[derive(Debug)]
pub enum ServeError {
    /// The admission queue was full.
    Overloaded {
        /// Requests executing at rejection time.
        in_flight: usize,
        /// Requests queued at rejection time.
        queued: usize,
        /// Deterministic backoff hint derived from the queue state
        /// (see [`crate::admission::retry_after_ms`]).
        retry_after_ms: u64,
    },
    /// A fail-fast budget propagated a pipeline error.
    Failed(VqiError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Overloaded {
                in_flight,
                queued,
                retry_after_ms,
            } => {
                write!(
                    f,
                    "overloaded: {in_flight} in flight, {queued} queued; \
                     retry after {retry_after_ms} ms"
                )
            }
            ServeError::Failed(e) => write!(f, "request failed: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Response of `select`.
#[derive(Debug)]
pub struct SelectResponse {
    /// The snapshot the selection read (pinned for the whole request).
    pub snapshot: Arc<Snapshot>,
    /// Whether the set came from the content-addressed cache.
    pub cached: bool,
    /// The selected patterns, possibly an anytime subset.
    pub outcome: PipelineOutcome<Arc<PatternSet>>,
}

impl SelectResponse {
    /// Epoch the request executed against.
    pub fn epoch(&self) -> u64 {
        self.snapshot.epoch()
    }
}

/// One matched graph of a `query`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryHit {
    /// Collection slot id.
    pub graph_id: usize,
    /// Embeddings found (capped by the request's per-graph limit).
    pub embeddings: usize,
}

/// Payload of a `query` response.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct QueryMatches {
    /// Graphs with at least one embedding, in slot-id order.
    pub hits: Vec<QueryHit>,
    /// Graphs fully examined before any budget trip.
    pub graphs_examined: usize,
    /// Sum of embeddings over `hits`.
    pub total_embeddings: usize,
}

/// Response of `query`.
#[derive(Debug)]
pub struct QueryResponse {
    /// The snapshot the scan read.
    pub snapshot: Arc<Snapshot>,
    /// The matches, possibly a prefix (anytime) under a tight deadline.
    pub outcome: PipelineOutcome<QueryMatches>,
}

impl QueryResponse {
    /// Epoch the request executed against.
    pub fn epoch(&self) -> u64 {
        self.snapshot.epoch()
    }
}

/// Payload of an `update` response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UpdateReport {
    /// Graphs added by the batch.
    pub added: usize,
    /// Graphs removed by the batch.
    pub removed: usize,
    /// Epoch the batch was published as.
    pub epoch: u64,
    /// Live collection size after the batch.
    pub collection_len: usize,
    /// Size of the MIDAS-maintained pattern set, when maintaining.
    pub maintained_patterns: Option<usize>,
    /// Whether maintenance took the incremental (delta) path, fell
    /// back to a full recompute, or was skipped entirely (census
    /// failure, apply-only mode, or a batch that never applied).
    pub census_mode: CensusMode,
}

/// Response of `update`.
#[derive(Debug)]
pub struct UpdateResponse {
    /// The report, `Degraded` when MIDAS cut maintenance stages (the
    /// collection itself always reflects the whole batch).
    pub outcome: PipelineOutcome<UpdateReport>,
}

enum Maintainer {
    ApplyOnly { next: GraphCollection },
    Midas { midas: Box<Midas> },
}

impl Maintainer {
    fn bootstrap(initial: &GraphCollection, mode: &MaintenanceMode) -> Maintainer {
        match mode {
            MaintenanceMode::ApplyOnly => Maintainer::ApplyOnly {
                next: initial.clone(),
            },
            MaintenanceMode::Midas { budget, config: mc } => Maintainer::Midas {
                midas: Box::new(Midas::bootstrap(initial.clone(), *budget, *mc)),
            },
        }
    }
}

/// The maintainer plus its durable log, guarded by one lock so the
/// apply → append → fsync → publish sequence of every update is a
/// single critical section.
struct MaintainerState {
    maintainer: Maintainer,
    log: Option<DurableLog>,
}

/// The multi-tenant service core.
pub struct VqiService {
    store: SnapshotStore,
    cache: PatternSetCache,
    admission: Admission,
    maintainer: Mutex<MaintainerState>,
    sessions: Mutex<BTreeSet<u64>>,
    default_deadline_ms: u64,
}

impl VqiService {
    /// Boots the service on `initial` (published as epoch 0), with no
    /// durability: a crash discards all applied updates.
    pub fn new(initial: GraphCollection, config: ServeConfig) -> Self {
        Self::build(initial, config, None, 0)
    }

    /// Boots the service on `initial` with a durable update log rooted
    /// at `wal_dir`: the epoch-0 checkpoint is written before the
    /// service accepts requests, and every update batch is logged (and,
    /// per `durability.fsync`, made durable) before its epoch
    /// publishes. Refuses a directory already holding durable state —
    /// use [`VqiService::recover`] for that.
    pub fn with_durability(
        initial: GraphCollection,
        config: ServeConfig,
        wal_dir: &std::path::Path,
        durability: DurabilityConfig,
    ) -> Result<Self, VqiError> {
        let log = DurableLog::bootstrap(wal_dir, durability, &initial, 0)?;
        Ok(Self::build(initial, config, Some(log), 0))
    }

    /// Recovers a service from the durable state in `wal_dir`: loads
    /// the newest valid checkpoint, replays the WAL suffix in epoch
    /// order (truncating a torn tail record), and resumes the epoch
    /// sequence where the previous process left it. The recovered
    /// collection — and therefore every subsequent `select`/`query`
    /// output — is bit-identical to the uncrashed process at the same
    /// epoch; MIDAS-derived state is re-bootstrapped from the
    /// collection (it is a deterministic function of it).
    pub fn recover(
        wal_dir: &std::path::Path,
        config: ServeConfig,
        durability: DurabilityConfig,
    ) -> Result<(Self, RecoveryReport), VqiError> {
        let recovered = durable::recover(wal_dir, durability)?;
        let report = recovered.report;
        let service = Self::build(
            recovered.collection,
            config,
            Some(recovered.log),
            report.final_epoch,
        );
        Ok((service, report))
    }

    fn build(
        initial: GraphCollection,
        config: ServeConfig,
        log: Option<DurableLog>,
        epoch: u64,
    ) -> Self {
        let maintainer = Maintainer::bootstrap(&initial, &config.maintenance);
        VqiService {
            store: SnapshotStore::with_epoch(initial, epoch),
            cache: PatternSetCache::new(config.cache_capacity),
            admission: Admission::new(config.admission),
            maintainer: Mutex::new(MaintainerState { maintainer, log }),
            sessions: Mutex::new(BTreeSet::new()),
            default_deadline_ms: config.default_deadline_ms,
        }
    }

    /// The snapshot store (exposed for tests and the harness).
    pub fn store(&self) -> &SnapshotStore {
        &self.store
    }

    /// Cached pattern-set entries.
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// Distinct session ids seen so far.
    pub fn session_count(&self) -> usize {
        self.sessions.lock().expect("session lock").len()
    }

    fn budget_for(&self, deadline_ms: Option<u64>) -> Budget {
        let ms = deadline_ms.unwrap_or(self.default_deadline_ms);
        if ms == 0 {
            Budget::unlimited()
        } else {
            Budget::unlimited().with_deadline_ms(ms)
        }
    }

    fn touch_session(&self, session: u64) {
        let mut s = self.sessions.lock().expect("session lock");
        if s.insert(session) {
            vqi_observe::gauge_set("serve.sessions", s.len() as i64);
        }
    }

    /// A `Degraded` verdict for a request that spent its whole deadline
    /// queued: the empty payload is the correct anytime answer.
    fn queue_expired<T>(value: T) -> PipelineOutcome<T> {
        let mut deg = Degradation::new();
        deg.record(&VqiError::DeadlineExceeded {
            stage: "serve.queue".into(),
        });
        deg.finish(value)
    }

    /// Selects a pattern set on the current snapshot.
    pub fn select(
        &self,
        session: u64,
        selector: &SelectorKind,
        budget: &PatternBudget,
        deadline_ms: Option<u64>,
    ) -> Result<SelectResponse, ServeError> {
        let _run = vqi_observe::run("serve.select");
        let start = Instant::now();
        vqi_observe::incr("serve.select.requests", 1);
        self.touch_session(session);
        let ctrl = self.budget_for(deadline_ms);

        let _permit = match self.admission.admit(&ctrl) {
            Admitted::Permit(p) => p,
            Admitted::DeadlineExpired => {
                return Ok(SelectResponse {
                    snapshot: self.store.pin(),
                    cached: false,
                    outcome: Self::queue_expired(Arc::new(PatternSet::new())),
                });
            }
            Admitted::Overloaded {
                in_flight,
                queued,
                retry_after_ms,
            } => {
                return Err(ServeError::Overloaded {
                    in_flight,
                    queued,
                    retry_after_ms,
                });
            }
        };

        let snapshot = self.store.pin();
        let key = SelectKey::new(
            CollectionFingerprint::of(snapshot.collection()),
            selector.tag(),
            budget,
        );
        if let Some(set) = self.cache.get(&key) {
            vqi_observe::observe(
                "serve.select.latency_us",
                start.elapsed().as_micros() as u64,
            );
            return Ok(SelectResponse {
                snapshot,
                cached: true,
                outcome: PipelineOutcome::complete(set),
            });
        }

        let outcome = run_selector(snapshot.collection(), selector, budget, &ctrl)
            .map_err(ServeError::Failed)?;
        let outcome = PipelineOutcome {
            value: Arc::new(outcome.value),
            completeness: outcome.completeness,
        };
        if outcome.completeness.is_complete() {
            self.cache.insert(key, Arc::clone(&outcome.value));
        }
        vqi_observe::observe(
            "serve.select.latency_us",
            start.elapsed().as_micros() as u64,
        );
        Ok(SelectResponse {
            snapshot,
            cached: false,
            outcome,
        })
    }

    /// Counts embeddings of `query` in every graph of the current
    /// snapshot (non-induced, at most `max_embeddings_per_graph` each).
    /// Under a tight deadline the scan stops early and reports the
    /// prefix it finished as `Degraded`.
    pub fn query(
        &self,
        session: u64,
        query: &Graph,
        max_embeddings_per_graph: usize,
        deadline_ms: Option<u64>,
    ) -> Result<QueryResponse, ServeError> {
        let _run = vqi_observe::run("serve.query");
        let start = Instant::now();
        vqi_observe::incr("serve.query.requests", 1);
        self.touch_session(session);
        let ctrl = self.budget_for(deadline_ms);

        let _permit = match self.admission.admit(&ctrl) {
            Admitted::Permit(p) => p,
            Admitted::DeadlineExpired => {
                return Ok(QueryResponse {
                    snapshot: self.store.pin(),
                    outcome: Self::queue_expired(QueryMatches::default()),
                });
            }
            Admitted::Overloaded {
                in_flight,
                queued,
                retry_after_ms,
            } => {
                return Err(ServeError::Overloaded {
                    in_flight,
                    queued,
                    retry_after_ms,
                });
            }
        };

        let snapshot = self.store.pin();
        let opts = MatchOptions {
            max_embeddings: max_embeddings_per_graph,
            ..Default::default()
        };
        let mut deg = Degradation::new();
        let mut matches = QueryMatches::default();
        for (id, g) in snapshot.collection().iter() {
            match count_embeddings_ctrl(query, g, None, opts, &ctrl) {
                Ok(n) => {
                    matches.graphs_examined += 1;
                    if n > 0 {
                        matches.total_embeddings += n;
                        matches.hits.push(QueryHit {
                            graph_id: id,
                            embeddings: n,
                        });
                    }
                }
                Err(e) => {
                    deg.absorb(&ctrl, e).map_err(ServeError::Failed)?;
                    break;
                }
            }
        }
        vqi_observe::observe("serve.query.latency_us", start.elapsed().as_micros() as u64);
        Ok(QueryResponse {
            snapshot,
            outcome: deg.finish(matches),
        })
    }

    /// Applies a batch update and publishes the result as a new epoch.
    /// Updates serialize on the maintainer lock; readers are never
    /// blocked and keep their pinned epochs.
    pub fn update(
        &self,
        session: u64,
        batch: BatchUpdate,
        deadline_ms: Option<u64>,
    ) -> Result<UpdateResponse, ServeError> {
        let _run = vqi_observe::run("serve.update");
        let start = Instant::now();
        vqi_observe::incr("serve.update.requests", 1);
        self.touch_session(session);
        let ctrl = self.budget_for(deadline_ms);

        let _permit = match self.admission.admit(&ctrl) {
            Admitted::Permit(p) => p,
            Admitted::DeadlineExpired => {
                // the batch was NOT applied; the report says so
                return Ok(UpdateResponse {
                    outcome: Self::queue_expired(UpdateReport {
                        added: 0,
                        removed: 0,
                        epoch: self.store.epoch(),
                        collection_len: self.store.pin().collection().len(),
                        maintained_patterns: None,
                        census_mode: CensusMode::Skipped,
                    }),
                });
            }
            Admitted::Overloaded {
                in_flight,
                queued,
                retry_after_ms,
            } => {
                return Err(ServeError::Overloaded {
                    in_flight,
                    queued,
                    retry_after_ms,
                });
            }
        };

        let added = batch.additions.len();
        let removed = batch.removals.len();
        let mut state = self.maintainer.lock().expect("maintainer lock");
        // durability, step 1 of 2: the batch is logged and fsync'd
        // BEFORE it is applied or published. On any later failure the
        // record is either rolled back (maintenance error below) or
        // replayed by recovery (crash) — never silently lost after the
        // caller saw the new epoch.
        let epoch_next = self.store.epoch() + 1;
        let appended_at = match state.log.as_mut() {
            Some(log) => Some(
                log.append(epoch_next, &durable::encode_batch(&batch))
                    .map_err(ServeError::Failed)?,
            ),
            None => None,
        };
        let applied = match &mut state.maintainer {
            Maintainer::ApplyOnly { next } => {
                next.apply(batch);
                Ok((
                    Completeness::Complete,
                    next.len(),
                    None,
                    // no maintenance kernels run in apply-only mode
                    CensusMode::Skipped,
                    next.clone(),
                ))
            }
            Maintainer::Midas { midas } => midas
                .apply_update_ctrl(batch, &ctrl)
                .map(|out| {
                    (
                        out.completeness,
                        midas.collection.len(),
                        Some(midas.patterns.len()),
                        out.value.census_mode,
                        midas.collection.clone(),
                    )
                })
                .map_err(ServeError::Failed),
        };
        let (completeness, collection_len, maintained, census_mode, next) = match applied {
            Ok(v) => v,
            Err(e) => {
                // the batch never took effect: its record must not
                // survive into recovery
                if let (Some(log), Some(at)) = (state.log.as_mut(), appended_at) {
                    log.rollback(at).map_err(ServeError::Failed)?;
                }
                return Err(e);
            }
        };
        // durability, step 2 of 2: checkpoint on cadence, then publish.
        // The record for `epoch_next` is durable before the epoch is
        // visible to any reader — the fsync-before-publish ordering the
        // recovery bit-identity proof rests on (DESIGN §13).
        if let Some(log) = state.log.as_mut() {
            log.committed(epoch_next, &next).map_err(ServeError::Failed)?;
            // crash point: the record is durable, the epoch is not yet
            // published — recovery must replay it (K may exceed acks)
            vqi_runtime::fault::maybe_crash("serve.update.pre_publish", epoch_next);
        }
        // publish while still holding the maintainer lock: epochs are
        // published in the same order batches were applied
        let epoch = self.store.publish(next);
        debug_assert_eq!(epoch, epoch_next, "publishes serialize under the lock");
        drop(state);

        // applied updates count as delta when the maintainer reused
        // cached per-graph state, full otherwise (fresh recompute, a
        // failed census, or apply-only mode)
        match census_mode {
            CensusMode::Delta => vqi_observe::incr("serve.update.delta", 1),
            CensusMode::Full | CensusMode::Skipped => vqi_observe::incr("serve.update.full", 1),
        }
        vqi_observe::observe(
            "serve.update.latency_us",
            start.elapsed().as_micros() as u64,
        );
        Ok(UpdateResponse {
            outcome: PipelineOutcome {
                value: UpdateReport {
                    added,
                    removed,
                    epoch,
                    collection_len,
                    maintained_patterns: maintained,
                    census_mode,
                },
                completeness,
            },
        })
    }
}

fn run_selector(
    collection: &GraphCollection,
    selector: &SelectorKind,
    budget: &PatternBudget,
    ctrl: &Budget,
) -> Result<PipelineOutcome<PatternSet>, VqiError> {
    match selector {
        SelectorKind::Catapult => Catapult::default().run_ctrl(collection, budget, ctrl),
        SelectorKind::Modular => ModularPipeline::standard().run_ctrl(collection, budget, ctrl),
        SelectorKind::Random { seed } => {
            // the baseline has no budget-aware path; it is cheap enough
            // to run to completion
            let repo = GraphRepository::Collection(collection.clone());
            Ok(PipelineOutcome::complete(
                RandomSelector::new(*seed).select(&repo, budget),
            ))
        }
    }
}

/// A from-scratch, unconstrained selection on `collection` — the ground
/// truth the snapshot-isolation and cache bit-identity asserts compare
/// against. Deterministic at any thread count, like every selector in
/// this workspace.
pub fn reference_select(
    collection: &GraphCollection,
    selector: &SelectorKind,
    budget: &PatternBudget,
) -> PatternSet {
    run_selector(collection, selector, budget, &Budget::unlimited())
        .expect("unlimited budget cannot fail")
        .value
}

/// Canonical codes of a pattern set, for bit-identity comparisons.
pub fn pattern_codes(set: &PatternSet) -> Vec<String> {
    set.patterns()
        .iter()
        .map(|p| format!("{:?}", p.code))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vqi_datasets::{aids_like, MoleculeParams};

    fn molecules(count: usize, seed: u64) -> Vec<Graph> {
        aids_like(MoleculeParams {
            count,
            seed,
            max_rings: 1,
            max_chains: 2,
            max_chain_len: 2,
        })
    }

    #[test]
    fn cache_hits_are_bit_identical_to_cold_computes() {
        let service = VqiService::new(
            GraphCollection::new(molecules(10, 11)),
            ServeConfig::default(),
        );
        let budget = PatternBudget::new(4, 3, 6);
        for kind in [
            SelectorKind::Catapult,
            SelectorKind::Modular,
            SelectorKind::Random { seed: 7 },
        ] {
            let cold = service.select(1, &kind, &budget, None).unwrap();
            assert!(!cold.cached, "{kind:?}: first select computes");
            assert!(cold.outcome.completeness.is_complete());
            let hit = service.select(2, &kind, &budget, None).unwrap();
            assert!(hit.cached, "{kind:?}: second select hits");
            // the hit shares the very allocation — bit-identity for free
            assert!(Arc::ptr_eq(&cold.outcome.value, &hit.outcome.value));
            let reference = reference_select(cold.snapshot.collection(), &kind, &budget);
            assert_eq!(
                pattern_codes(&cold.outcome.value),
                pattern_codes(&reference),
                "{kind:?}: served set must equal the from-scratch run"
            );
        }
        assert_eq!(service.cache_len(), 3);
        assert_eq!(service.session_count(), 2);
    }

    #[test]
    fn query_scans_the_pinned_snapshot() {
        let graphs = molecules(8, 23);
        let probe = graphs[0].clone();
        let service = VqiService::new(GraphCollection::new(graphs), ServeConfig::default());
        let resp = service.query(5, &probe, 50, None).unwrap();
        assert!(resp.outcome.completeness.is_complete());
        let m = &resp.outcome.value;
        assert_eq!(m.graphs_examined, 8);
        // a graph always embeds in itself
        assert!(m.hits.iter().any(|h| h.graph_id == 0 && h.embeddings >= 1));
        assert_eq!(
            m.total_embeddings,
            m.hits.iter().map(|h| h.embeddings).sum::<usize>()
        );
        // hits come in slot-id order
        assert!(m.hits.windows(2).all(|w| w[0].graph_id < w[1].graph_id));
    }

    #[test]
    fn tight_deadline_degrades_instead_of_failing() {
        let service = VqiService::new(
            GraphCollection::new(molecules(120, 31)),
            ServeConfig::default(),
        );
        let budget = PatternBudget::new(5, 3, 6);
        let resp = service
            .select(1, &SelectorKind::Catapult, &budget, Some(1))
            .unwrap();
        match &resp.outcome.completeness {
            Completeness::Degraded { stages_cut, .. } => {
                assert!(!stages_cut.is_empty());
                // degraded artifacts of one request's deadline are not
                // shared through the cache
                assert_eq!(service.cache_len(), 0);
            }
            Completeness::Complete => {
                panic!("a 1 ms deadline cannot fit a 120-graph selection")
            }
        }
        // the same request without the deadline completes and caches
        let full = service
            .select(1, &SelectorKind::Catapult, &budget, None)
            .unwrap();
        assert!(full.outcome.completeness.is_complete());
        assert!(!full.outcome.value.is_empty());
        assert_eq!(service.cache_len(), 1);
    }

    #[test]
    fn midas_mode_maintains_patterns_and_readers_keep_pinned_epochs() {
        let budget = PatternBudget::new(4, 3, 6);
        let service = VqiService::new(
            GraphCollection::new(molecules(10, 47)),
            ServeConfig {
                maintenance: MaintenanceMode::Midas {
                    budget,
                    config: MidasConfig::default(),
                },
                ..Default::default()
            },
        );
        let before = service.store().pin();
        assert_eq!(before.epoch(), 0);
        let len_before = before.collection().len();

        let extra = molecules(2, 99);
        let resp = service.update(1, BatchUpdate::adding(extra), None).unwrap();
        let report = &resp.outcome.value;
        assert_eq!(report.added, 2);
        assert_eq!(report.epoch, 1);
        assert_eq!(report.collection_len, len_before + 2);
        assert!(report.maintained_patterns.unwrap_or(0) > 0);
        // the bootstrap filled the per-graph census cache, so the first
        // update already takes the incremental path
        assert_eq!(report.census_mode, CensusMode::Delta);

        // the pre-update pin still reads the old world
        assert_eq!(before.collection().len(), len_before);
        assert_eq!(service.store().epoch(), 1);
        assert_eq!(service.store().pin().collection().len(), len_before + 2);
    }

    #[test]
    fn update_reports_delta_vs_full_and_bumps_mode_counters() {
        vqi_observe::set_enabled(true);
        let counter = |name: &str| {
            vqi_observe::snapshot()
                .counters
                .get(name)
                .copied()
                .unwrap_or(0)
        };

        // apply-only mode runs no maintenance kernels: the report says
        // so and the update lands on the non-delta counter
        let plain = VqiService::new(
            GraphCollection::new(molecules(6, 11)),
            ServeConfig::default(),
        );
        let (full_before, delta_before) =
            (counter("serve.update.full"), counter("serve.update.delta"));
        let r = plain
            .update(1, BatchUpdate::adding(molecules(1, 12)), None)
            .unwrap();
        assert_eq!(r.outcome.value.census_mode, CensusMode::Skipped);
        assert_eq!(r.outcome.value.epoch, 1);
        assert!(counter("serve.update.full") > full_before);

        // midas mode reuses the bootstrap-filled census cache: delta
        let midas_service = VqiService::new(
            GraphCollection::new(molecules(8, 21)),
            ServeConfig {
                maintenance: MaintenanceMode::Midas {
                    budget: PatternBudget::new(4, 3, 6),
                    config: MidasConfig::default(),
                },
                ..Default::default()
            },
        );
        let r2 = midas_service
            .update(1, BatchUpdate::adding(molecules(2, 22)), None)
            .unwrap();
        assert_eq!(r2.outcome.value.census_mode, CensusMode::Delta);
        assert_eq!(r2.outcome.value.epoch, 1);
        assert!(counter("serve.update.delta") > delta_before);
        vqi_observe::set_enabled(false);
    }
}
