//! Content-addressed pattern-set cache.
//!
//! Selection is by far the most expensive endpoint, and its input is
//! fully determined by `(collection contents, selector, budget)` — the
//! selectors in this workspace are deterministic at any thread count.
//! The cache therefore keys on the *content* of the pinned collection:
//! the multiset of per-graph [`Fingerprint`]s, ordered by their stable
//! digests so that insertion order and tombstoned slot ids do not
//! matter. Two tenants serving the same dataset share one entry;
//! applying any update perturbs a fingerprint and misses naturally.
//!
//! Digests only shard the comparison: a lookup that matches on the
//! 64-bit digest still compares the full fingerprint vectors with `==`,
//! so a digest collision costs a miss, never a wrong answer. (Distinct
//! collections with *identical fingerprint multisets* do collide — the
//! fingerprint is a summary, not a canonical form — which is the usual
//! summary-keyed-memo tradeoff and documented in DESIGN §10.)

use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, VecDeque};
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex};
use vqi_core::budget::PatternBudget;
use vqi_core::pattern::PatternSet;
use vqi_core::repo::GraphCollection;
use vqi_graph::index::Fingerprint;

/// Order-free content summary of a whole collection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CollectionFingerprint {
    /// Per-live-graph fingerprints, sorted by digest (ties keep the
    /// digest-equal group together; `==` compares full contents).
    members: Vec<Fingerprint>,
    digest: u64,
}

impl CollectionFingerprint {
    /// Summarizes the live graphs of `c`, insensitive to slot ids,
    /// insertion order, and node relabelings within each graph.
    pub fn of(c: &GraphCollection) -> Self {
        let mut members: Vec<Fingerprint> = c.iter().map(|(_, g)| Fingerprint::of(g)).collect();
        members.sort_by_key(Fingerprint::digest);
        let mut h = DefaultHasher::new();
        members.len().hash(&mut h);
        for m in &members {
            m.digest().hash(&mut h);
        }
        CollectionFingerprint {
            members,
            digest: h.finish(),
        }
    }

    /// The combined 64-bit digest (used for hashing; equality always
    /// compares the full member list).
    pub fn digest(&self) -> u64 {
        self.digest
    }

    /// Number of live graphs summarized.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the summarized collection was empty.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }
}

impl Hash for CollectionFingerprint {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.digest.hash(state);
    }
}

/// Full cache key: what the selection is a pure function of.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SelectKey {
    /// Content summary of the pinned collection.
    pub collection: CollectionFingerprint,
    /// Selector identity tag (name plus any seed/config discriminator).
    pub selector: String,
    /// Requested number of patterns.
    pub count: usize,
    /// Minimum pattern size.
    pub min_size: usize,
    /// Maximum pattern size.
    pub max_size: usize,
}

impl SelectKey {
    /// The key for selecting with `selector_tag` under `budget` on a
    /// collection summarized by `fp`.
    pub fn new(fp: CollectionFingerprint, selector_tag: String, budget: &PatternBudget) -> Self {
        SelectKey {
            collection: fp,
            selector: selector_tag,
            count: budget.count,
            min_size: budget.min_size,
            max_size: budget.max_size,
        }
    }
}

/// Bounded FIFO memo of completed selections.
///
/// Only `Complete` outcomes are inserted (a degraded set is an artifact
/// of one request's deadline, not of the dataset), so a hit is always
/// bit-identical to what a fresh unconstrained run would select.
#[derive(Debug)]
pub struct PatternSetCache {
    inner: Mutex<CacheInner>,
    capacity: usize,
}

#[derive(Debug, Default)]
struct CacheInner {
    map: HashMap<SelectKey, Arc<PatternSet>>,
    fifo: VecDeque<SelectKey>,
}

impl PatternSetCache {
    /// A cache holding at most `capacity` pattern sets (0 disables).
    pub fn new(capacity: usize) -> Self {
        PatternSetCache {
            inner: Mutex::new(CacheInner::default()),
            capacity,
        }
    }

    /// Looks up `key`, counting `cache.serve_select.{hit,miss}`.
    pub fn get(&self, key: &SelectKey) -> Option<Arc<PatternSet>> {
        let inner = self.inner.lock().expect("cache lock");
        let found = inner.map.get(key).cloned();
        match found {
            Some(set) => {
                vqi_observe::incr("cache.serve_select.hit", 1);
                Some(set)
            }
            None => {
                vqi_observe::incr("cache.serve_select.miss", 1);
                None
            }
        }
    }

    /// Inserts a completed selection, evicting the oldest entry when
    /// full. Re-inserting an existing key refreshes nothing (first
    /// writer wins — both writers computed the same bits).
    pub fn insert(&self, key: SelectKey, set: Arc<PatternSet>) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.inner.lock().expect("cache lock");
        if inner.map.contains_key(&key) {
            return;
        }
        while inner.fifo.len() >= self.capacity {
            if let Some(old) = inner.fifo.pop_front() {
                inner.map.remove(&old);
                vqi_observe::incr("cache.serve_select.evict", 1);
            }
        }
        inner.fifo.push_back(key.clone());
        inner.map.insert(key, set);
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("cache lock").map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vqi_core::pattern::PatternKind;
    use vqi_graph::generate::{chain, cycle, star};

    fn set_of(g: vqi_graph::Graph) -> Arc<PatternSet> {
        let mut s = PatternSet::new();
        s.insert(g, PatternKind::Canned, "test").unwrap();
        Arc::new(s)
    }

    #[test]
    fn fingerprint_ignores_insertion_order_and_slot_ids() {
        let a = GraphCollection::new(vec![chain(3, 0, 0), cycle(4, 1, 0), star(5, 2, 0)]);
        let b = GraphCollection::new(vec![star(5, 2, 0), chain(3, 0, 0), cycle(4, 1, 0)]);
        assert_eq!(CollectionFingerprint::of(&a), CollectionFingerprint::of(&b));
        assert_eq!(
            CollectionFingerprint::of(&a).digest(),
            CollectionFingerprint::of(&b).digest()
        );

        // tombstones shift ids but not content
        let mut c = GraphCollection::new(vec![chain(9, 7, 0), star(5, 2, 0)]);
        c.apply(vqi_core::repo::BatchUpdate {
            additions: vec![chain(3, 0, 0), cycle(4, 1, 0)],
            removals: vec![0],
        });
        assert_eq!(CollectionFingerprint::of(&a), CollectionFingerprint::of(&c));
    }

    #[test]
    fn fingerprint_distinguishes_content() {
        let a = GraphCollection::new(vec![chain(3, 0, 0)]);
        let b = GraphCollection::new(vec![chain(4, 0, 0)]);
        assert_ne!(CollectionFingerprint::of(&a), CollectionFingerprint::of(&b));
    }

    #[test]
    fn hit_returns_the_inserted_bits_and_budget_discriminates() {
        let col = GraphCollection::new(vec![chain(3, 0, 0), cycle(4, 0, 0)]);
        let fp = CollectionFingerprint::of(&col);
        let budget = PatternBudget::new(3, 2, 5);
        let cache = PatternSetCache::new(4);
        let key = SelectKey::new(fp.clone(), "catapult".into(), &budget);
        assert!(cache.get(&key).is_none());

        let stored = set_of(chain(2, 0, 0));
        cache.insert(key.clone(), Arc::clone(&stored));
        let hit = cache.get(&key).expect("hit");
        assert!(Arc::ptr_eq(&hit, &stored), "hit must be the same bits");

        // a different budget is a different key
        let other = SelectKey::new(fp, "catapult".into(), &PatternBudget::new(4, 2, 5));
        assert!(cache.get(&other).is_none());
    }

    #[test]
    fn fifo_eviction_is_bounded() {
        let budget = PatternBudget::new(1, 2, 4);
        let cache = PatternSetCache::new(2);
        for i in 0..5 {
            let col = GraphCollection::new(vec![chain(3 + i, 0, 0)]);
            let key = SelectKey::new(CollectionFingerprint::of(&col), "t".into(), &budget);
            cache.insert(key, set_of(chain(2, 0, 0)));
        }
        assert_eq!(cache.len(), 2);
        // oldest entries are gone, newest survive
        let newest = GraphCollection::new(vec![chain(7, 0, 0)]);
        let key = SelectKey::new(CollectionFingerprint::of(&newest), "t".into(), &budget);
        assert!(cache.get(&key).is_some());
    }

    #[test]
    fn zero_capacity_disables() {
        let cache = PatternSetCache::new(0);
        let col = GraphCollection::new(vec![chain(3, 0, 0)]);
        let key = SelectKey::new(
            CollectionFingerprint::of(&col),
            "t".into(),
            &PatternBudget::default(),
        );
        cache.insert(key.clone(), set_of(chain(2, 0, 0)));
        assert!(cache.get(&key).is_none());
        assert!(cache.is_empty());
    }
}
