//! Durability: write-ahead logging, epoch-consistent checkpoints, and
//! crash recovery for the service (DESIGN §13).
//!
//! The durable state of a service is a directory holding two kinds of
//! files:
//!
//! * **WAL segments** (`wal-<start_epoch>.log`) — [`vqi_graph::wal`]
//!   segments whose records are encoded [`BatchUpdate`]s, one per
//!   epoch, appended and fsync'd *before* the epoch is published by the
//!   [`crate::snapshot::SnapshotStore`]. A segment is rotated (closed,
//!   new one started) at every checkpoint; its name is the first epoch
//!   it can contain.
//! * **Checkpoints** (`ckpt-<epoch>.ckpt`) — a `VQICKPT1` container
//!   serializing the whole collection as of one published epoch: one
//!   digest-checked `VQICSR01` image per live slot, explicit tombstone
//!   markers for dead slots (ids are durable), a collection digest, and
//!   a trailer digest over the entire file. Checkpoints are written to
//!   a temp file, fsync'd, renamed into place, and the directory
//!   fsync'd — a torn checkpoint is never visible under the final name,
//!   and a corrupt one is detected by its trailer and skipped in favor
//!   of the previous checkpoint.
//!
//! **Recovery** ([`recover`]) = newest valid checkpoint + replay of
//! every logged batch after it, in epoch order, with two rules proven
//! by the crash-matrix suite:
//!
//! 1. *torn-tail truncation* — a torn or corrupt record at the tail of
//!    the newest segment is the batch that was being appended when the
//!    process died; it was never acknowledged (fsync precedes publish,
//!    publish precedes the response), so it is discarded and physically
//!    truncated. Damage anywhere else is real corruption and fails.
//! 2. *epoch contiguity* — replayed epochs must run `E+1, E+2, …` from
//!    the checkpoint epoch `E` with no gap or repeat; anything else
//!    means log files are missing and recovery refuses to guess.
//!
//! The recovered collection is bit-identical to the uncrashed process's
//! collection at the same epoch: batch replay is [`GraphCollection::apply`]
//! on bit-identical inputs (the codecs preserve graph ids, labels, and
//! adjacency order; slot ids and tombstones survive the checkpoint).

use std::fs::File;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::time::Instant;
use vqi_core::repo::{BatchUpdate, GraphCollection};
use vqi_graph::storage::CsrGraph;
use vqi_graph::wal::{self, bytes_digest, SegmentScan, WalWriter};
use vqi_runtime::VqiError;

/// Magic bytes opening every checkpoint file.
pub const CKPT_MAGIC: &[u8; 8] = b"VQICKPT1";

const CKPT_SEED: u64 = 0xC8EC_4901_57A7_E000;
const DIGEST_SEED: u64 = 0xC011_EC71_0D16_E575;

/// Durability tuning for [`crate::service::VqiService`].
#[derive(Debug, Clone)]
pub struct DurabilityConfig {
    /// Batches between checkpoints (and segment rotations); `0` means
    /// checkpoint only at bootstrap, never during updates.
    pub checkpoint_every: u64,
    /// Whether every append is fsync'd before the epoch publishes.
    /// Disabling trades the crash guarantee for speed (the bench's
    /// no-durability baseline); production keeps it on.
    pub fsync: bool,
    /// Checkpoints retained (older ones and their segments are pruned).
    /// Clamped to at least 1; the default 2 keeps one fallback in case
    /// the newest checkpoint is itself damaged.
    pub keep_checkpoints: usize,
}

impl Default for DurabilityConfig {
    fn default() -> Self {
        DurabilityConfig {
            checkpoint_every: 16,
            fsync: true,
            keep_checkpoints: 2,
        }
    }
}

/// What [`recover`] did, for operators and the recovery-time histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryReport {
    /// Epoch of the checkpoint recovery started from.
    pub checkpoint_epoch: u64,
    /// Newer checkpoints that were present but unreadable (each one
    /// skipped in favor of an older valid one).
    pub checkpoints_skipped: usize,
    /// Batches replayed from the WAL suffix.
    pub replayed: u64,
    /// Records skipped because their epoch was already in the
    /// checkpoint (a crash mid-checkpoint leaves them in the segment).
    pub skipped_records: u64,
    /// Bytes of torn/corrupt tail truncated from the newest segment.
    pub truncated_bytes: u64,
    /// The epoch of the recovered snapshot.
    pub final_epoch: u64,
    /// Wall-clock recovery time.
    pub elapsed_ms: f64,
}

fn parse_err(reason: String) -> VqiError {
    VqiError::Parse { line: 0, reason }
}

fn io_err(path: &Path, what: &str, e: std::io::Error) -> VqiError {
    parse_err(format!("{what} {}: {e}", path.display()))
}

fn segment_path(dir: &Path, start_epoch: u64) -> PathBuf {
    dir.join(format!("wal-{start_epoch:020}.log"))
}

fn ckpt_path(dir: &Path, epoch: u64) -> PathBuf {
    dir.join(format!("ckpt-{epoch:020}.ckpt"))
}

/// Lists `(epoch, path)` for files matching `prefix-<epoch>.<ext>`,
/// ascending by epoch.
fn list_numbered(dir: &Path, prefix: &str, ext: &str) -> Result<Vec<(u64, PathBuf)>, VqiError> {
    let mut out = Vec::new();
    let entries = std::fs::read_dir(dir).map_err(|e| io_err(dir, "cannot list", e))?;
    for entry in entries {
        let entry = entry.map_err(|e| io_err(dir, "cannot list", e))?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if let Some(rest) = name.strip_prefix(prefix) {
            if let Some(num) = rest.strip_suffix(ext) {
                if let Ok(epoch) = num.parse::<u64>() {
                    out.push((epoch, entry.path()));
                }
            }
        }
    }
    out.sort_by_key(|&(e, _)| e);
    Ok(out)
}

// ---- batch codec --------------------------------------------------------

/// Serializes a [`BatchUpdate`] as a WAL record payload: removal ids,
/// then each added graph via [`wal::encode_graph`], all little-endian.
pub fn encode_batch(batch: &BatchUpdate) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&(batch.removals.len() as u32).to_le_bytes());
    for &id in &batch.removals {
        out.extend_from_slice(&(id as u64).to_le_bytes());
    }
    out.extend_from_slice(&(batch.additions.len() as u32).to_le_bytes());
    for g in &batch.additions {
        let bytes = wal::encode_graph(g);
        out.extend_from_slice(&(bytes.len() as u64).to_le_bytes());
        out.extend_from_slice(&bytes);
    }
    out
}

fn take<'a>(bytes: &'a [u8], pos: &mut usize, len: usize, what: &str) -> Result<&'a [u8], VqiError> {
    let end = pos
        .checked_add(len)
        .filter(|&e| e <= bytes.len())
        .ok_or_else(|| parse_err(format!("batch payload truncated reading {what}")))?;
    let out = &bytes[*pos..end];
    *pos = end;
    Ok(out)
}

fn take_u32(bytes: &[u8], pos: &mut usize, what: &str) -> Result<u32, VqiError> {
    Ok(u32::from_le_bytes(
        take(bytes, pos, 4, what)?.try_into().expect("4 bytes"),
    ))
}

fn take_u64(bytes: &[u8], pos: &mut usize, what: &str) -> Result<u64, VqiError> {
    Ok(u64::from_le_bytes(
        take(bytes, pos, 8, what)?.try_into().expect("8 bytes"),
    ))
}

/// Decodes [`encode_batch`] bytes; addition order and removal order are
/// preserved exactly, so replaying the decoded batch assigns the same
/// slot ids the original `apply` did.
pub fn decode_batch(bytes: &[u8]) -> Result<BatchUpdate, VqiError> {
    let mut pos = 0usize;
    let nr = take_u32(bytes, &mut pos, "removal count")? as usize;
    // each removal is 8 bytes; bound the count by the remaining payload
    // before allocating
    if nr > (bytes.len() - pos) / 8 {
        return Err(parse_err(format!("removal count {nr} exceeds payload")));
    }
    let mut removals = Vec::with_capacity(nr);
    for _ in 0..nr {
        removals.push(take_u64(bytes, &mut pos, "removal id")? as usize);
    }
    let na = take_u32(bytes, &mut pos, "addition count")? as usize;
    let mut additions = Vec::new();
    for i in 0..na {
        let len = take_u64(bytes, &mut pos, "graph length")? as usize;
        let gbytes = take(bytes, &mut pos, len, "graph bytes")?;
        additions.push(
            wal::decode_graph(gbytes)
                .map_err(|e| parse_err(format!("addition {i} corrupt: {e}")))?,
        );
    }
    if pos != bytes.len() {
        return Err(parse_err(format!(
            "batch payload has {} trailing bytes",
            bytes.len() - pos
        )));
    }
    Ok(BatchUpdate {
        additions,
        removals,
    })
}

// ---- collection digest --------------------------------------------------

/// Content digest of a whole collection, tombstones included: the
/// splitmix64 fold of per-slot [`CsrGraph::digest`]s (with an explicit
/// marker per tombstone) plus the slot count. Equal digests ⇔ equal
/// collections slot-for-slot — the quantity the crash-matrix suite
/// compares between a recovered and an uncrashed service.
pub fn collection_digest(c: &GraphCollection) -> u64 {
    let mut bytes = Vec::with_capacity(8 + 9 * c.slot_count());
    bytes.extend_from_slice(&(c.slot_count() as u64).to_le_bytes());
    for id in 0..c.slot_count() {
        match c.slot(id).expect("id in range") {
            None => bytes.push(0u8),
            Some(g) => {
                bytes.push(1u8);
                bytes.extend_from_slice(&CsrGraph::from_graph(g).digest().to_le_bytes());
            }
        }
    }
    bytes_digest(DIGEST_SEED, &bytes)
}

// ---- checkpoints --------------------------------------------------------

fn encode_checkpoint(epoch: u64, c: &GraphCollection) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(CKPT_MAGIC);
    out.extend_from_slice(&epoch.to_le_bytes());
    out.extend_from_slice(&(c.slot_count() as u64).to_le_bytes());
    out.extend_from_slice(&collection_digest(c).to_le_bytes());
    for id in 0..c.slot_count() {
        match c.slot(id).expect("id in range") {
            None => out.push(0u8),
            Some(g) => {
                out.push(1u8);
                let img = CsrGraph::from_graph(g).encode_image();
                out.extend_from_slice(&(img.len() as u64).to_le_bytes());
                out.extend_from_slice(&img);
            }
        }
    }
    let trailer = bytes_digest(CKPT_SEED, &out);
    out.extend_from_slice(&trailer.to_le_bytes());
    out
}

fn decode_checkpoint(bytes: &[u8]) -> Result<(u64, GraphCollection), VqiError> {
    if bytes.len() < 8 + 24 + 8 || &bytes[..8] != CKPT_MAGIC {
        return Err(parse_err("not a VQICKPT1 checkpoint".into()));
    }
    let body = &bytes[..bytes.len() - 8];
    let stored = u64::from_le_bytes(bytes[bytes.len() - 8..].try_into().expect("8 bytes"));
    if bytes_digest(CKPT_SEED, body) != stored {
        return Err(parse_err("checkpoint digest mismatch".into()));
    }
    let mut pos = 8usize;
    let epoch = take_u64(body, &mut pos, "epoch")?;
    let slot_count = take_u64(body, &mut pos, "slot count")? as usize;
    let want_digest = take_u64(body, &mut pos, "collection digest")?;
    // each slot costs at least 1 byte; clamp before allocating
    if slot_count > body.len() - pos {
        return Err(parse_err(format!(
            "slot count {slot_count} exceeds checkpoint size"
        )));
    }
    let mut slots: Vec<Option<vqi_graph::Graph>> = Vec::with_capacity(slot_count);
    for id in 0..slot_count {
        let tag = take(body, &mut pos, 1, "slot tag")?[0];
        match tag {
            0 => slots.push(None),
            1 => {
                let len = take_u64(body, &mut pos, "image length")? as usize;
                let img = take(body, &mut pos, len, "image bytes")?;
                let csr = CsrGraph::decode_image(img)
                    .map_err(|e| parse_err(format!("slot {id} image corrupt: {e}")))?;
                slots.push(Some(csr.to_graph()));
            }
            t => return Err(parse_err(format!("slot {id} has invalid tag {t}"))),
        }
    }
    if pos != body.len() {
        return Err(parse_err(format!(
            "checkpoint has {} trailing bytes",
            body.len() - pos
        )));
    }
    let collection = GraphCollection::from_slots(slots);
    if collection_digest(&collection) != want_digest {
        return Err(parse_err("collection digest mismatch".into()));
    }
    Ok((epoch, collection))
}

/// Writes an epoch-consistent checkpoint: temp file, fsync, rename,
/// directory fsync. A crash at any instant leaves either no checkpoint
/// under the final name or a complete one.
pub fn write_checkpoint(
    dir: &Path,
    epoch: u64,
    c: &GraphCollection,
) -> Result<PathBuf, VqiError> {
    let bytes = encode_checkpoint(epoch, c);
    let tmp = dir.join(format!("ckpt-{epoch:020}.tmp"));
    let path = ckpt_path(dir, epoch);
    let mut f = File::create(&tmp).map_err(|e| io_err(&tmp, "cannot create", e))?;
    f.write_all(&bytes)
        .map_err(|e| io_err(&tmp, "cannot write", e))?;
    f.sync_all().map_err(|e| io_err(&tmp, "cannot fsync", e))?;
    drop(f);
    // crash point: the checkpoint bytes are durable but not yet visible
    // under the final name — recovery must fall back to the previous
    // checkpoint plus the (unrotated) WAL suffix
    vqi_runtime::fault::maybe_crash("wal.checkpoint.mid", epoch);
    std::fs::rename(&tmp, &path).map_err(|e| io_err(&path, "cannot rename into", e))?;
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
    vqi_observe::incr("wal.checkpoint", 1);
    Ok(path)
}

/// Reads and validates one checkpoint file.
pub fn read_checkpoint(path: &Path) -> Result<(u64, GraphCollection), VqiError> {
    let bytes = std::fs::read(path).map_err(|e| io_err(path, "cannot read", e))?;
    decode_checkpoint(&bytes)
}

// ---- the durable log ----------------------------------------------------

/// The service's handle on its durability directory: the open WAL
/// segment plus the checkpoint cadence. All methods are called under
/// the service's maintainer lock, which serializes them with publishes.
pub struct DurableLog {
    dir: PathBuf,
    cfg: DurabilityConfig,
    writer: WalWriter,
    since_checkpoint: u64,
}

impl DurableLog {
    /// Bootstraps a fresh durability directory: writes the epoch-0
    /// checkpoint (the initial collection must be recoverable even if
    /// the process dies before its first update) and opens the first
    /// segment. Refuses a directory that already holds a checkpoint —
    /// that state belongs to a previous process; [`recover`] it instead
    /// of silently shadowing it.
    pub fn bootstrap(
        dir: &Path,
        cfg: DurabilityConfig,
        initial: &GraphCollection,
        epoch: u64,
    ) -> Result<DurableLog, VqiError> {
        std::fs::create_dir_all(dir).map_err(|e| io_err(dir, "cannot create", e))?;
        if !list_numbered(dir, "ckpt-", ".ckpt")?.is_empty() {
            return Err(parse_err(format!(
                "{} already holds checkpoints; recover instead of bootstrapping",
                dir.display()
            )));
        }
        write_checkpoint(dir, epoch, initial)?;
        let writer = WalWriter::create(segment_path(dir, epoch + 1))?;
        Ok(DurableLog {
            dir: dir.to_path_buf(),
            cfg,
            writer,
            since_checkpoint: 0,
        })
    }

    /// Reattaches to a recovered directory: reopens the newest segment
    /// truncated to its valid prefix (physically removing any torn
    /// tail), or starts a fresh segment when none exists.
    fn reattach(
        dir: &Path,
        cfg: DurabilityConfig,
        final_epoch: u64,
        last_segment: Option<(PathBuf, u64)>,
        replayed: u64,
    ) -> Result<DurableLog, VqiError> {
        let writer = match last_segment {
            Some((path, valid_len)) => WalWriter::reopen(path, valid_len)?,
            None => WalWriter::create(segment_path(dir, final_epoch + 1))?,
        };
        Ok(DurableLog {
            dir: dir.to_path_buf(),
            cfg,
            writer,
            since_checkpoint: replayed,
        })
    }

    /// Appends (and, per config, fsyncs) one encoded batch as `epoch`.
    /// Returns the segment length *before* the append, for
    /// [`DurableLog::rollback`].
    pub fn append(&mut self, epoch: u64, payload: &[u8]) -> Result<u64, VqiError> {
        let before = self.writer.len();
        self.writer.append(epoch, payload)?;
        if self.cfg.fsync {
            self.writer.sync()?;
        }
        Ok(before)
    }

    /// Discards a just-appended record whose batch failed to apply
    /// (e.g. a fail-fast maintenance error): the epoch was never
    /// published, so the record must not survive into recovery.
    pub fn rollback(&mut self, to_len: u64) -> Result<(), VqiError> {
        self.writer.truncate_to(to_len)
    }

    /// Notes that `epoch` (whose record is already durable) is being
    /// published with collection state `c`; checkpoints and rotates on
    /// the configured cadence.
    pub fn committed(&mut self, epoch: u64, c: &GraphCollection) -> Result<(), VqiError> {
        self.since_checkpoint += 1;
        if self.cfg.checkpoint_every > 0 && self.since_checkpoint >= self.cfg.checkpoint_every {
            write_checkpoint(&self.dir, epoch, c)?;
            self.writer = WalWriter::create(segment_path(&self.dir, epoch + 1))?;
            self.since_checkpoint = 0;
            self.prune()?;
        }
        Ok(())
    }

    /// Removes checkpoints beyond the retention count and every segment
    /// that can only contain epochs at or before the oldest retained
    /// checkpoint (segments rotate at checkpoints, so a segment whose
    /// start epoch is ≤ that checkpoint's epoch ended at it).
    fn prune(&self) -> Result<(), VqiError> {
        let keep = self.cfg.keep_checkpoints.max(1);
        let ckpts = list_numbered(&self.dir, "ckpt-", ".ckpt")?;
        if ckpts.len() <= keep {
            return Ok(());
        }
        let oldest_kept = ckpts[ckpts.len() - keep].0;
        for (epoch, path) in &ckpts[..ckpts.len() - keep] {
            let _ = epoch;
            let _ = std::fs::remove_file(path);
        }
        for (start, path) in list_numbered(&self.dir, "wal-", ".log")? {
            if start <= oldest_kept && path != self.writer.path() {
                let _ = std::fs::remove_file(path);
            }
        }
        Ok(())
    }
}

/// The recovered durable state: the collection, its epoch, the report,
/// and the log handle reattached for further appends.
pub struct Recovered {
    /// The collection as of `report.final_epoch`.
    pub collection: GraphCollection,
    /// The reattached log (torn tail already truncated).
    pub log: DurableLog,
    /// What recovery did.
    pub report: RecoveryReport,
}

/// Recovers the durable state of `dir`: newest valid checkpoint, then
/// replay of the WAL suffix in epoch order, truncating a torn tail in
/// the newest segment and refusing damage anywhere else.
pub fn recover(dir: &Path, cfg: DurabilityConfig) -> Result<Recovered, VqiError> {
    let start = Instant::now();
    let ckpts = list_numbered(dir, "ckpt-", ".ckpt")?;
    if ckpts.is_empty() {
        return Err(parse_err(format!(
            "{} holds no checkpoint; nothing to recover",
            dir.display()
        )));
    }
    // newest valid checkpoint wins; unreadable newer ones are skipped
    // (their epochs are still covered by the segments that were rotated
    // when — and only when — a checkpoint succeeded)
    let mut checkpoints_skipped = 0usize;
    let mut base: Option<(u64, GraphCollection)> = None;
    let mut last_err = None;
    for (_, path) in ckpts.iter().rev() {
        match read_checkpoint(path) {
            Ok(found) => {
                base = Some(found);
                break;
            }
            Err(e) => {
                checkpoints_skipped += 1;
                last_err = Some(e);
            }
        }
    }
    let (ckpt_epoch, mut collection) = base.ok_or_else(|| {
        parse_err(format!(
            "no usable checkpoint in {} (last error: {})",
            dir.display(),
            last_err.map(|e| e.to_string()).unwrap_or_default()
        ))
    })?;

    let segments = list_numbered(dir, "wal-", ".log")?;
    let mut replayed = 0u64;
    let mut skipped_records = 0u64;
    let mut truncated_bytes = 0u64;
    let mut expected = ckpt_epoch + 1;
    let mut last_segment: Option<(PathBuf, u64)> = None;
    for (i, (seg_start, path)) in segments.iter().enumerate() {
        let scan: SegmentScan = wal::read_segment(path)?;
        let is_last = i + 1 == segments.len();
        if scan.truncated() && !is_last {
            return Err(parse_err(format!(
                "segment {} has a torn record but is not the newest segment: \
                 mid-log corruption",
                path.display()
            )));
        }
        for record in &scan.records {
            if record.epoch <= ckpt_epoch {
                skipped_records += 1;
                continue;
            }
            if record.epoch != expected {
                return Err(parse_err(format!(
                    "segment {} (start {seg_start}) holds epoch {} where {} was \
                     expected: log suffix is not contiguous",
                    path.display(),
                    record.epoch,
                    expected
                )));
            }
            let batch = decode_batch(&record.payload)?;
            collection.apply(batch);
            expected += 1;
            replayed += 1;
        }
        if is_last {
            truncated_bytes = scan.torn_bytes;
            last_segment = Some((path.clone(), scan.valid_len));
        }
    }
    let final_epoch = expected - 1;
    let elapsed_ms = start.elapsed().as_secs_f64() * 1e3;
    vqi_observe::observe("serve.recovery.ms", elapsed_ms as u64);
    let log = DurableLog::reattach(dir, cfg, final_epoch, last_segment, replayed)?;
    Ok(Recovered {
        collection,
        log,
        report: RecoveryReport {
            checkpoint_epoch: ckpt_epoch,
            checkpoints_skipped,
            replayed,
            skipped_records,
            truncated_bytes,
            final_epoch,
            elapsed_ms,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use vqi_graph::generate::{chain, cycle, star};

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("vqi_durable_{name}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("tmp dir");
        dir
    }

    fn sample_collection() -> GraphCollection {
        let mut c = GraphCollection::new(vec![chain(4, 1, 0), star(5, 2, 1), cycle(6, 3, 2)]);
        c.apply(BatchUpdate::removing(vec![1])); // leave a tombstone
        c
    }

    #[test]
    fn durable_batch_codec_roundtrips_and_rejects_damage() {
        let batch = BatchUpdate {
            additions: vec![chain(5, 1, 0), cycle(4, 2, 1)],
            removals: vec![0, 7],
        };
        let bytes = encode_batch(&batch);
        let back = decode_batch(&bytes).expect("decode");
        assert_eq!(back.removals, batch.removals);
        assert_eq!(back.additions.len(), 2);
        for (a, b) in back.additions.iter().zip(&batch.additions) {
            assert_eq!(wal::encode_graph(a), wal::encode_graph(b));
        }
        // the empty batch is legal
        let empty = decode_batch(&encode_batch(&BatchUpdate::default())).expect("empty");
        assert!(empty.is_empty());
        // truncations and count lies must error, never panic or OOM
        for cut in [0usize, 3, 4, bytes.len() - 1] {
            assert!(decode_batch(&bytes[..cut]).is_err(), "cut {cut}");
        }
        let mut lying = bytes.clone();
        lying[..4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode_batch(&lying).is_err());
        let mut trailing = bytes;
        trailing.push(0);
        assert!(decode_batch(&trailing).is_err());
    }

    #[test]
    fn durable_checkpoint_roundtrips_slots_and_tombstones() {
        let dir = tmp_dir("ckpt");
        let c = sample_collection();
        write_checkpoint(&dir, 7, &c).expect("write");
        let (epoch, back) = read_checkpoint(&ckpt_path(&dir, 7)).expect("read");
        assert_eq!(epoch, 7);
        assert_eq!(back.slot_count(), c.slot_count());
        assert_eq!(back.ids(), c.ids());
        assert!(back.get(1).is_none(), "tombstone must survive");
        assert_eq!(collection_digest(&back), collection_digest(&c));
        // and replay on top assigns the same next id
        let mut b2 = back;
        assert_eq!(
            b2.apply(BatchUpdate::adding(vec![chain(2, 9, 9)])),
            vec![c.slot_count()]
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn durable_corrupt_checkpoints_are_rejected() {
        let dir = tmp_dir("ckpt_corrupt");
        let c = sample_collection();
        let path = write_checkpoint(&dir, 3, &c).expect("write");
        let valid = std::fs::read(&path).expect("read");
        // bit flips anywhere must yield Parse (stride keeps it fast)
        for i in (0..valid.len()).step_by(7) {
            let mut bad = valid.clone();
            bad[i] ^= 1 << (i % 8);
            std::fs::write(&path, &bad).expect("write bad");
            assert!(
                matches!(read_checkpoint(&path), Err(VqiError::Parse { .. })),
                "bit flip at {i}"
            );
        }
        // truncations too
        for cut in [0usize, 7, 8, 40, valid.len() - 1] {
            std::fs::write(&path, &valid[..cut]).expect("write cut");
            assert!(
                matches!(read_checkpoint(&path), Err(VqiError::Parse { .. })),
                "cut {cut}"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn durable_recovery_replays_the_wal_suffix() {
        let dir = tmp_dir("recover");
        let initial = GraphCollection::new(vec![chain(4, 1, 0)]);
        let cfg = DurabilityConfig {
            checkpoint_every: 0, // no mid-run checkpoints: pure replay
            ..Default::default()
        };
        let mut log = DurableLog::bootstrap(&dir, cfg.clone(), &initial, 0).expect("bootstrap");
        // what an uncrashed process would hold
        let mut reference = initial.clone();
        let batches = [
            BatchUpdate::adding(vec![star(4, 2, 1), cycle(5, 3, 2)]),
            BatchUpdate::removing(vec![0]),
            BatchUpdate {
                additions: vec![chain(3, 7, 7)],
                removals: vec![1],
            },
        ];
        for (i, b) in batches.iter().enumerate() {
            log.append(i as u64 + 1, &encode_batch(b)).expect("append");
            reference.apply(b.clone());
            log.committed(i as u64 + 1, &reference).expect("committed");
        }
        drop(log);

        let rec = recover(&dir, cfg.clone()).expect("recover");
        assert_eq!(rec.report.checkpoint_epoch, 0);
        assert_eq!(rec.report.replayed, 3);
        assert_eq!(rec.report.final_epoch, 3);
        assert_eq!(rec.report.truncated_bytes, 0);
        assert_eq!(collection_digest(&rec.collection), collection_digest(&reference));

        // a second recovery is idempotent
        drop(rec.log);
        let again = recover(&dir, cfg).expect("recover again");
        assert_eq!(again.report.final_epoch, 3);
        assert_eq!(
            collection_digest(&again.collection),
            collection_digest(&reference)
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn durable_recovery_truncates_torn_tails_and_checkpoints_rotate() {
        let dir = tmp_dir("torn_tail");
        let initial = GraphCollection::new(vec![chain(4, 1, 0)]);
        let cfg = DurabilityConfig {
            checkpoint_every: 2,
            ..Default::default()
        };
        let mut log = DurableLog::bootstrap(&dir, cfg.clone(), &initial, 0).expect("bootstrap");
        let mut reference = initial.clone();
        for i in 1..=5u64 {
            let b = BatchUpdate::adding(vec![chain(2 + i as usize, i as u32, 0)]);
            log.append(i, &encode_batch(&b)).expect("append");
            reference.apply(b.clone());
            log.committed(i, &reference).expect("committed");
        }
        let seg = log.writer.path().to_path_buf();
        drop(log);
        // checkpoints at epochs 2 and 4 exist; epoch-0 pruned
        let ckpts = list_numbered(&dir, "ckpt-", ".ckpt").expect("list");
        assert_eq!(ckpts.iter().map(|&(e, _)| e).collect::<Vec<_>>(), vec![2, 4]);

        // tear the live segment mid-record: epoch 5 is lost, 1–4 survive
        let bytes = std::fs::read(&seg).expect("read seg");
        std::fs::write(&seg, &bytes[..bytes.len() - 5]).expect("tear");
        let rec = recover(&dir, cfg.clone()).expect("recover");
        assert_eq!(rec.report.checkpoint_epoch, 4);
        assert_eq!(rec.report.replayed, 0, "epoch 5's record was torn away");
        assert_eq!(rec.report.final_epoch, 4);
        assert!(rec.report.truncated_bytes > 0);
        let mut want = initial;
        for i in 1..=4u64 {
            want.apply(BatchUpdate::adding(vec![chain(2 + i as usize, i as u32, 0)]));
        }
        assert_eq!(collection_digest(&rec.collection), collection_digest(&want));

        // a corrupt newest checkpoint falls back to the previous one,
        // replaying the covering segment instead
        drop(rec.log);
        let newest = ckpt_path(&dir, 4);
        let mut cbytes = std::fs::read(&newest).expect("read ckpt");
        let mid = cbytes.len() / 2;
        cbytes[mid] ^= 0xFF;
        std::fs::write(&newest, &cbytes).expect("corrupt ckpt");
        let rec2 = recover(&dir, cfg).expect("recover past bad checkpoint");
        assert_eq!(rec2.report.checkpoint_epoch, 2);
        assert_eq!(rec2.report.checkpoints_skipped, 1);
        assert_eq!(rec2.report.replayed, 2, "epochs 3 and 4 replay from the log");
        assert_eq!(rec2.report.final_epoch, 4);
        assert_eq!(collection_digest(&rec2.collection), collection_digest(&want));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn durable_bootstrap_refuses_existing_state_and_recover_needs_some() {
        let dir = tmp_dir("refuse");
        let c = GraphCollection::new(vec![chain(3, 1, 0)]);
        // recovering an empty dir fails loudly
        assert!(recover(&dir, DurabilityConfig::default()).is_err());
        let log = DurableLog::bootstrap(&dir, DurabilityConfig::default(), &c, 0).expect("boot");
        drop(log);
        // bootstrapping over existing state fails loudly
        assert!(DurableLog::bootstrap(&dir, DurabilityConfig::default(), &c, 0).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
