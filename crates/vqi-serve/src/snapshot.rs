//! Epoch-swapped collection snapshots.
//!
//! The store holds one immutable [`Snapshot`] behind an `RwLock<Arc<_>>`.
//! Readers [`pin`](SnapshotStore::pin) it — an `Arc` clone under a read
//! lock held for nanoseconds — and then work entirely off the pinned
//! value, so a publish never blocks on in-flight reads and a read never
//! observes a collection mid-update. Publishing swaps the `Arc` under
//! the write lock and bumps the epoch; old snapshots stay alive until
//! their last reader drops them.

use std::sync::{Arc, RwLock};
use vqi_core::repo::GraphCollection;

/// One immutable published state of the repository.
#[derive(Debug)]
pub struct Snapshot {
    epoch: u64,
    collection: Arc<GraphCollection>,
}

impl Snapshot {
    /// The publish sequence number (0 is the bootstrap snapshot).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The collection as of this epoch.
    pub fn collection(&self) -> &GraphCollection {
        &self.collection
    }
}

/// The single-writer, many-reader snapshot holder.
#[derive(Debug)]
pub struct SnapshotStore {
    current: RwLock<Arc<Snapshot>>,
}

impl SnapshotStore {
    /// A store whose epoch-0 snapshot is `initial`.
    pub fn new(initial: GraphCollection) -> Self {
        SnapshotStore::with_epoch(initial, 0)
    }

    /// A store bootstrapped at an arbitrary epoch — the recovery
    /// constructor: replaying a checkpoint plus a WAL suffix must
    /// resume the epoch sequence where the dead process left it, so
    /// clients never observe an epoch number reused for different data.
    pub fn with_epoch(initial: GraphCollection, epoch: u64) -> Self {
        SnapshotStore {
            current: RwLock::new(Arc::new(Snapshot {
                epoch,
                collection: Arc::new(initial),
            })),
        }
    }

    /// Pins the current snapshot: the returned `Arc` stays valid (and
    /// immutable) for as long as the caller holds it, regardless of how
    /// many publishes happen meanwhile.
    pub fn pin(&self) -> Arc<Snapshot> {
        Arc::clone(&self.current.read().expect("snapshot lock"))
    }

    /// The current epoch without pinning.
    pub fn epoch(&self) -> u64 {
        self.current.read().expect("snapshot lock").epoch
    }

    /// Atomically publishes `next` as the new current snapshot and
    /// returns its epoch. Callers serialize publishes themselves (the
    /// service holds its maintainer lock across build-and-publish).
    pub fn publish(&self, next: GraphCollection) -> u64 {
        let mut cur = self.current.write().expect("snapshot lock");
        let epoch = cur.epoch + 1;
        *cur = Arc::new(Snapshot {
            epoch,
            collection: Arc::new(next),
        });
        vqi_observe::incr("serve.snapshot.published", 1);
        vqi_observe::gauge_set("serve.epoch", epoch as i64);
        epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vqi_graph::generate::{chain, cycle};

    #[test]
    fn pin_survives_publish() {
        let store = SnapshotStore::new(GraphCollection::new(vec![chain(3, 0, 0)]));
        let pinned = store.pin();
        assert_eq!(pinned.epoch(), 0);
        assert_eq!(pinned.collection().len(), 1);

        let e = store.publish(GraphCollection::new(vec![cycle(4, 0, 0), chain(2, 0, 0)]));
        assert_eq!(e, 1);
        // the pin still sees the old world, the store the new one
        assert_eq!(pinned.collection().len(), 1);
        assert_eq!(store.pin().collection().len(), 2);
        assert_eq!(store.epoch(), 1);
    }

    #[test]
    fn epochs_are_monotone() {
        let store = SnapshotStore::new(GraphCollection::new(vec![]));
        for i in 1..=5 {
            assert_eq!(store.publish(GraphCollection::new(vec![])), i);
        }
    }
}
