//! Bounded admission control with deadline-aware queueing.
//!
//! At most `max_in_flight` requests execute at once; up to `max_queue`
//! more wait in FIFO arrival order on a condvar. A waiter whose
//! [`Budget`] deadline passes while queued gives up its slot and reports
//! [`Admitted::DeadlineExpired`] — the service answers it with a
//! `Degraded` empty outcome rather than an error, so an overloaded
//! server degrades the way every other budget trip in this workspace
//! does. The only hard rejection is queue overflow, which bounds the
//! memory an arrival burst can pin.

use std::sync::{Condvar, Mutex};
use std::time::Duration;
use vqi_runtime::Budget;

/// Admission limits.
#[derive(Debug, Clone, Copy)]
pub struct AdmissionConfig {
    /// Maximum concurrently executing requests.
    pub max_in_flight: usize,
    /// Maximum requests waiting beyond the in-flight limit.
    pub max_queue: usize,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            max_in_flight: 4,
            max_queue: 64,
        }
    }
}

/// Outcome of an admission attempt.
#[derive(Debug)]
pub enum Admitted<'a> {
    /// The request may execute; drop the permit when done.
    Permit(Permit<'a>),
    /// The request's deadline elapsed while it was queued.
    DeadlineExpired,
    /// The queue was full on arrival.
    Overloaded {
        /// Requests executing at rejection time.
        in_flight: usize,
        /// Requests queued at rejection time.
        queued: usize,
        /// Deterministic backoff hint, see [`retry_after_ms`].
        retry_after_ms: u64,
    },
}

/// The backoff hint attached to a rejection: a pure function of the
/// queue state at rejection time, so identical load shapes produce
/// identical hints (and tests can assert them). Models each request
/// ahead of the caller costing ~5 ms, clamped to `[5, 2000]` so a
/// short spike never advises a multi-second wait and the hint is never
/// zero (a zero hint invites an immediate retry storm — the opposite
/// of what a rejection asks for).
pub fn retry_after_ms(in_flight: usize, queued: usize) -> u64 {
    const PER_REQUEST_MS: u64 = 5;
    ((in_flight + queued) as u64 * PER_REQUEST_MS).clamp(PER_REQUEST_MS, 2000)
}

#[derive(Debug, Default)]
struct AdmState {
    in_flight: usize,
    queued: usize,
}

/// The admission gate.
#[derive(Debug)]
pub struct Admission {
    config: AdmissionConfig,
    state: Mutex<AdmState>,
    available: Condvar,
}

impl Admission {
    /// A gate with the given limits (`max_in_flight` is clamped to ≥ 1).
    pub fn new(config: AdmissionConfig) -> Self {
        Admission {
            config: AdmissionConfig {
                max_in_flight: config.max_in_flight.max(1),
                ..config
            },
            state: Mutex::new(AdmState::default()),
            available: Condvar::new(),
        }
    }

    /// The configured limits.
    pub fn config(&self) -> AdmissionConfig {
        self.config
    }

    /// Requests that are currently executing.
    pub fn in_flight(&self) -> usize {
        self.state.lock().expect("admission lock").in_flight
    }

    /// Tries to admit a request, waiting (bounded by `budget`'s
    /// deadline, if any) when the in-flight limit is reached.
    pub fn admit(&self, budget: &Budget) -> Admitted<'_> {
        let mut st = self.state.lock().expect("admission lock");
        let mut queued = false;
        loop {
            if st.in_flight < self.config.max_in_flight {
                if queued {
                    st.queued -= 1;
                    vqi_observe::gauge_set("serve.queue_depth", st.queued as i64);
                }
                st.in_flight += 1;
                vqi_observe::gauge_set("serve.in_flight", st.in_flight as i64);
                return Admitted::Permit(Permit { gate: self });
            }
            if !queued {
                if st.queued >= self.config.max_queue {
                    vqi_observe::incr("serve.rejected", 1);
                    return Admitted::Overloaded {
                        in_flight: st.in_flight,
                        queued: st.queued,
                        retry_after_ms: retry_after_ms(st.in_flight, st.queued),
                    };
                }
                st.queued += 1;
                queued = true;
                vqi_observe::gauge_set("serve.queue_depth", st.queued as i64);
            }
            match budget.remaining() {
                Some(rem) if rem.is_zero() => {
                    st.queued -= 1;
                    vqi_observe::gauge_set("serve.queue_depth", st.queued as i64);
                    vqi_observe::incr("serve.queue_deadline", 1);
                    return Admitted::DeadlineExpired;
                }
                Some(rem) => {
                    // cap the nap so a missed wakeup cannot stall past
                    // the deadline by much even under spurious-wake-free
                    // schedulers
                    let nap = rem.min(Duration::from_millis(50));
                    st = self
                        .available
                        .wait_timeout(st, nap)
                        .expect("admission lock")
                        .0;
                }
                None => {
                    st = self.available.wait(st).expect("admission lock");
                }
            }
        }
    }

    fn release(&self) {
        let mut st = self.state.lock().expect("admission lock");
        st.in_flight -= 1;
        vqi_observe::gauge_set("serve.in_flight", st.in_flight as i64);
        drop(st);
        self.available.notify_one();
    }
}

/// RAII execution slot; releasing wakes one queued waiter.
#[derive(Debug)]
pub struct Permit<'a> {
    gate: &'a Admission,
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        self.gate.release();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn permits_bound_concurrency() {
        let gate = Admission::new(AdmissionConfig {
            max_in_flight: 2,
            max_queue: 16,
        });
        let peak = AtomicUsize::new(0);
        let live = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    let admitted = gate.admit(&Budget::unlimited());
                    let Admitted::Permit(_p) = admitted else {
                        panic!("unlimited budget under-queue must admit");
                    };
                    let now = live.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    std::thread::sleep(Duration::from_millis(5));
                    live.fetch_sub(1, Ordering::SeqCst);
                });
            }
        });
        assert!(peak.load(Ordering::SeqCst) <= 2, "in-flight limit breached");
        assert_eq!(gate.in_flight(), 0);
    }

    #[test]
    fn queue_overflow_rejects() {
        let gate = Admission::new(AdmissionConfig {
            max_in_flight: 1,
            max_queue: 0,
        });
        let Admitted::Permit(_held) = gate.admit(&Budget::unlimited()) else {
            panic!("first admit");
        };
        // queue of 0: a second arrival is rejected outright
        match gate.admit(&Budget::unlimited().with_deadline_ms(5)) {
            Admitted::Overloaded {
                in_flight,
                queued,
                retry_after_ms: hint,
            } => {
                assert_eq!(in_flight, 1);
                assert_eq!(queued, 0);
                // the hint is a pure function of the rejection state
                assert_eq!(hint, retry_after_ms(1, 0));
            }
            other => panic!("expected overload, got {other:?}"),
        };
    }

    #[test]
    fn retry_after_hint_is_deterministic_and_clamped() {
        // never zero (an immediate-retry hint would amplify overload)
        assert_eq!(retry_after_ms(0, 0), 5);
        assert_eq!(retry_after_ms(1, 0), 5);
        // linear in the work ahead of the caller
        assert_eq!(retry_after_ms(4, 6), 50);
        assert_eq!(retry_after_ms(4, 64), 340);
        // and capped so a burst never advises a multi-second wait
        assert_eq!(retry_after_ms(1000, 1000), 2000);
        // same state, same hint — callers can bake it into backoff
        // schedules without jitter appearing on the server side
        assert_eq!(retry_after_ms(4, 64), retry_after_ms(4, 64));
    }

    #[test]
    fn queued_deadline_expires_and_slot_is_reclaimed() {
        let gate = Admission::new(AdmissionConfig {
            max_in_flight: 1,
            max_queue: 4,
        });
        let Admitted::Permit(held) = gate.admit(&Budget::unlimited()) else {
            panic!("first admit");
        };
        match gate.admit(&Budget::unlimited().with_deadline_ms(20)) {
            Admitted::DeadlineExpired => {}
            other => panic!("expected queue-deadline expiry, got {other:?}"),
        }
        drop(held);
        // the expired waiter left no ghost queue entry
        let Admitted::Permit(_p) = gate.admit(&Budget::unlimited()) else {
            panic!("slot must be free again");
        };
        assert_eq!(gate.in_flight(), 1);
    }
}
