//! Deterministic closed-loop load generator.
//!
//! One thread per session replays a seeded mix of `select` / `query` /
//! `update` requests against a shared [`VqiService`]. The *workload* is
//! a pure function of [`LoadParams`] (per-session RNG streams); the
//! *interleaving* is whatever the scheduler produces — which is the
//! point: with `verify_isolation` on, every completed selection is
//! re-derived from scratch on the exact snapshot the service pinned and
//! must match bit for bit, no matter how the race unfolded.

use crate::service::{pattern_codes, reference_select, SelectorKind, ServeError, VqiService};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;
use vqi_core::budget::PatternBudget;
use vqi_core::repo::BatchUpdate;
use vqi_graph::Graph;

/// Workload description.
#[derive(Debug, Clone)]
pub struct LoadParams {
    /// Concurrent sessions (threads).
    pub sessions: usize,
    /// Requests each session issues.
    pub requests_per_session: usize,
    /// Session 0 issues an update every this-many requests (0 = never).
    pub update_every: usize,
    /// Selector used by `select` requests.
    pub selector: SelectorKind,
    /// Budget of `select` requests.
    pub select_budget: PatternBudget,
    /// Per-request deadline (None = service default).
    pub deadline_ms: Option<u64>,
    /// Per-graph embedding cap of `query` requests.
    pub query_cap: usize,
    /// Workload RNG seed.
    pub seed: u64,
    /// Query pool (drawn uniformly; empty skips queries).
    pub queries: Vec<Graph>,
    /// Update pool (cycled in order; empty skips updates).
    pub batches: Vec<BatchUpdate>,
    /// Re-derive every completed selection on its pinned snapshot and
    /// assert bit-identity (expensive; race tests only).
    pub verify_isolation: bool,
}

impl Default for LoadParams {
    fn default() -> Self {
        LoadParams {
            sessions: 2,
            requests_per_session: 10,
            update_every: 0,
            selector: SelectorKind::Catapult,
            select_budget: PatternBudget::new(4, 3, 6),
            deadline_ms: None,
            query_cap: 100,
            seed: 0x5EED,
            queries: Vec::new(),
            batches: Vec::new(),
            verify_isolation: false,
        }
    }
}

/// Latency/outcome tallies of one endpoint.
#[derive(Debug, Clone, Default)]
pub struct EndpointStats {
    /// Requests answered (degraded included).
    pub count: usize,
    /// Requests answered `Degraded`.
    pub degraded: usize,
    /// Requests rejected with overload.
    pub rejected: usize,
    /// Per-request wall latencies, microseconds, arrival order.
    pub latencies_us: Vec<u64>,
}

impl EndpointStats {
    fn absorb(&mut self, other: &EndpointStats) {
        self.count += other.count;
        self.degraded += other.degraded;
        self.rejected += other.rejected;
        self.latencies_us.extend_from_slice(&other.latencies_us);
    }

    fn percentile(&self, pct: u32) -> u64 {
        if self.latencies_us.is_empty() {
            return 0;
        }
        let mut sorted = self.latencies_us.clone();
        sorted.sort_unstable();
        let idx = (sorted.len() - 1) * pct as usize / 100;
        sorted[idx]
    }

    /// Median latency in microseconds (0 when empty).
    pub fn p50_us(&self) -> u64 {
        self.percentile(50)
    }

    /// 99th-percentile latency in microseconds (0 when empty).
    pub fn p99_us(&self) -> u64 {
        self.percentile(99)
    }
}

/// Aggregated result of a load run.
#[derive(Debug, Clone, Default)]
pub struct LoadReport {
    /// `select` endpoint tallies.
    pub select: EndpointStats,
    /// `query` endpoint tallies.
    pub query: EndpointStats,
    /// `update` endpoint tallies.
    pub update: EndpointStats,
    /// Selections answered from the content-addressed cache.
    pub cache_hits: usize,
    /// Selections computed fresh.
    pub cache_misses: usize,
    /// Snapshot-isolation equality asserts that ran (and passed).
    pub isolation_checks: usize,
    /// Epoch after the run.
    pub final_epoch: u64,
}

impl LoadReport {
    /// Total requests answered across endpoints.
    pub fn total_requests(&self) -> usize {
        self.select.count + self.query.count + self.update.count
    }

    /// Cache hit rate over all completed selections (0.0 when none).
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

fn mix(seed: u64, stream: u64) -> u64 {
    // splitmix64 finalizer: decorrelates per-session streams
    let mut z = seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Drives `params.sessions` concurrent session threads against
/// `service` and aggregates their tallies. Panics (failing the caller's
/// test) if any isolation assert trips.
pub fn run_load(service: &VqiService, params: &LoadParams) -> LoadReport {
    let session_reports: Vec<LoadReport> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..params.sessions)
            .map(|s| scope.spawn(move || run_session(service, params, s)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("session thread panicked"))
            .collect()
    });
    let mut report = LoadReport::default();
    for r in &session_reports {
        report.select.absorb(&r.select);
        report.query.absorb(&r.query);
        report.update.absorb(&r.update);
        report.cache_hits += r.cache_hits;
        report.cache_misses += r.cache_misses;
        report.isolation_checks += r.isolation_checks;
    }
    report.final_epoch = service.store().epoch();
    // close the run with a memory sample: the serve smoke tests and
    // exp_serve report `mem.rss_kb` / `mem.peak_rss_kb` alongside the
    // latency tallies
    vqi_observe::mem::record_rss();
    report
}

fn run_session(service: &VqiService, params: &LoadParams, s: usize) -> LoadReport {
    let mut rng = SmallRng::seed_from_u64(mix(params.seed, s as u64));
    let mut report = LoadReport::default();
    let session = s as u64;
    for i in 0..params.requests_per_session {
        let is_update = params.update_every > 0
            && s == 0
            && !params.batches.is_empty()
            && i % params.update_every == params.update_every - 1;
        if is_update {
            let batch = params.batches[(i / params.update_every) % params.batches.len()].clone();
            let start = Instant::now();
            match service.update(session, batch, params.deadline_ms) {
                Ok(resp) => {
                    report.update.count += 1;
                    if !resp.outcome.completeness.is_complete() {
                        report.update.degraded += 1;
                    }
                }
                Err(ServeError::Overloaded { .. }) => report.update.rejected += 1,
                Err(e) => panic!("update failed: {e}"),
            }
            report
                .update
                .latencies_us
                .push(start.elapsed().as_micros() as u64);
        } else if params.queries.is_empty() || rng.gen_bool(0.5) {
            let start = Instant::now();
            match service.select(
                session,
                &params.selector,
                &params.select_budget,
                params.deadline_ms,
            ) {
                Ok(resp) => {
                    report.select.count += 1;
                    let complete = resp.outcome.completeness.is_complete();
                    if !complete {
                        report.select.degraded += 1;
                    } else if resp.cached {
                        report.cache_hits += 1;
                    } else {
                        report.cache_misses += 1;
                    }
                    if params.verify_isolation && complete {
                        // the invariant: what the service answered is
                        // exactly what a from-scratch run on the pinned
                        // snapshot selects, no matter what the updater
                        // was doing meanwhile
                        let fresh = reference_select(
                            resp.snapshot.collection(),
                            &params.selector,
                            &params.select_budget,
                        );
                        assert_eq!(
                            pattern_codes(&resp.outcome.value),
                            pattern_codes(&fresh),
                            "snapshot-isolation violation at epoch {}",
                            resp.snapshot.epoch()
                        );
                        report.isolation_checks += 1;
                    }
                }
                Err(ServeError::Overloaded { .. }) => report.select.rejected += 1,
                Err(e) => panic!("select failed: {e}"),
            }
            report
                .select
                .latencies_us
                .push(start.elapsed().as_micros() as u64);
        } else {
            let q = &params.queries[rng.gen_range(0..params.queries.len())];
            let start = Instant::now();
            match service.query(session, q, params.query_cap, params.deadline_ms) {
                Ok(resp) => {
                    report.query.count += 1;
                    if !resp.outcome.completeness.is_complete() {
                        report.query.degraded += 1;
                    }
                }
                Err(ServeError::Overloaded { .. }) => report.query.rejected += 1,
                Err(e) => panic!("query failed: {e}"),
            }
            report
                .query
                .latencies_us
                .push(start.elapsed().as_micros() as u64);
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::{MaintenanceMode, ServeConfig, VqiService};
    use vqi_core::repo::GraphCollection;
    use vqi_datasets::{aids_like, MoleculeParams};
    use vqi_graph::generate::{chain, cycle, star};

    fn molecules(count: usize, seed: u64) -> Vec<Graph> {
        aids_like(MoleculeParams {
            count,
            seed,
            max_rings: 1,
            max_chains: 2,
            max_chain_len: 2,
        })
    }

    fn small_service() -> VqiService {
        VqiService::new(
            GraphCollection::new(molecules(12, 5)),
            ServeConfig {
                cache_capacity: 8,
                maintenance: MaintenanceMode::ApplyOnly,
                ..Default::default()
            },
        )
    }

    #[test]
    fn static_load_hits_the_cache_after_warmup() {
        let service = small_service();
        let params = LoadParams {
            sessions: 3,
            requests_per_session: 6,
            queries: vec![chain(3, 0, 0), cycle(4, 0, 0)],
            ..Default::default()
        };
        // warm the single entry synchronously: concurrent first arrivals
        // may each compute cold (first-writer-wins, still bit-identical),
        // so the deterministic claim is about the post-warmup phase
        let warm = service
            .select(0, &params.selector, &params.select_budget, None)
            .unwrap();
        assert!(!warm.cached, "first compute is cold");
        let report = run_load(&service, &params);
        assert!(report.select.count > 0);
        assert!(report.query.count > 0);
        assert_eq!(report.update.count, 0);
        assert_eq!(report.final_epoch, 0, "no updates, no publishes");
        // one tenant computed during warmup; everyone else shares the entry
        assert!(report.cache_hits > 0, "static dataset must hit the cache");
        assert_eq!(report.cache_misses, 0, "warmed entry serves every tenant");
        assert_eq!(
            report.select.count,
            report.select.latencies_us.len(),
            "every answered select has a latency sample"
        );
        assert!(report.select.p50_us() <= report.select.p99_us());
    }

    #[test]
    fn racing_readers_observe_consistent_snapshots_at_every_thread_cap() {
        // the headline invariant, exercised at kernel thread caps 1/2/4:
        // readers race one updater; every completed selection must equal
        // a from-scratch run on its pinned snapshot bit for bit
        for cap in [1usize, 2, 4] {
            vqi_graph::par::set_thread_cap(cap);
            let service = small_service();
            let extra = molecules(9, 77);
            let batches: Vec<BatchUpdate> = (0..3)
                .map(|i| BatchUpdate {
                    additions: vec![extra[3 * i].clone(), extra[3 * i + 1].clone()],
                    removals: vec![i],
                })
                .collect();
            let report = run_load(
                &service,
                &LoadParams {
                    sessions: 4,
                    requests_per_session: 8,
                    update_every: 3,
                    batches,
                    queries: vec![star(4, 0, 0)],
                    verify_isolation: true,
                    ..Default::default()
                },
            );
            assert!(
                report.isolation_checks > 0,
                "cap {cap}: the race must actually verify selections"
            );
            assert!(
                report.final_epoch >= 1,
                "cap {cap}: the updater must publish"
            );
            assert_eq!(
                report.select.rejected, 0,
                "cap {cap}: default queue absorbs"
            );
        }
        vqi_graph::par::set_thread_cap(0);
    }

    #[test]
    fn update_invalidates_by_content_not_by_time() {
        let service = small_service();
        let budget = PatternBudget::new(4, 3, 6);
        let kind = SelectorKind::Catapult;
        let a = service.select(1, &kind, &budget, None).unwrap();
        assert!(!a.cached);
        let b = service.select(2, &kind, &budget, None).unwrap();
        assert!(b.cached, "same content, different tenant: shared entry");

        service
            .update(1, BatchUpdate::adding(vec![chain(5, 9, 0)]), None)
            .unwrap();
        let c = service.select(1, &kind, &budget, None).unwrap();
        assert!(!c.cached, "content changed, key changed");
        assert_eq!(c.epoch(), 1);

        // removing the added graph restores the original content — and
        // the original cache entry answers again
        let last = c.snapshot.collection().ids().into_iter().max().unwrap();
        service
            .update(1, BatchUpdate::removing(vec![last]), None)
            .unwrap();
        let d = service.select(3, &kind, &budget, None).unwrap();
        assert!(d.cached, "restored content re-hits the original entry");
        assert_eq!(
            pattern_codes(&a.outcome.value),
            pattern_codes(&d.outcome.value)
        );
    }
}
