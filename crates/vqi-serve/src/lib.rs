//! Multi-tenant VQI service core (§4 of the tutorial: VQIs as
//! long-lived, shared infrastructure rather than one-shot pipelines).
//!
//! Everything built so far — CATAPULT/MIDAS selection, budget-aware
//! kernels, the observe registry — runs as a batch pipeline: load a
//! collection, select once, exit. A deployed visual query interface is
//! the opposite shape: a long-lived process where many user sessions
//! concurrently ask for pattern panels and run queries while the
//! repository itself keeps changing underneath them. This crate is that
//! serving layer, kept deliberately free of any network dependency (the
//! harness drives it over plain function calls from session threads):
//!
//! * [`snapshot`] — epoch-swapped [`std::sync::Arc`] snapshots of the
//!   [`vqi_core::repo::GraphCollection`]. Readers pin the current epoch
//!   and keep it for the whole request; the maintainer builds the next
//!   collection off to the side and publishes it atomically. A reader
//!   therefore always sees one internally consistent collection — never
//!   a half-applied batch — which is the snapshot-isolation invariant
//!   the race tests assert.
//! * [`cache`] — a pattern-set memo keyed by the *content* of the
//!   pinned collection (sorted [`vqi_graph::index::Fingerprint`]
//!   digests), selector identity, and budget. Identical datasets across
//!   tenants hit a shared entry; any update changes the fingerprint and
//!   naturally invalidates without explicit bookkeeping.
//! * [`admission`] — a bounded in-flight limit with a bounded FIFO
//!   queue. Requests carry a [`vqi_runtime::Budget`] deadline; a
//!   request that times out queueing is answered with a `Degraded`
//!   empty outcome (anytime semantics), while queue overflow is the
//!   only hard rejection.
//! * [`durable`] — the write-ahead log and checkpoint layer: every
//!   update batch is logged and fsync'd before its epoch publishes, and
//!   recovery (newest valid checkpoint + epoch-ordered replay, torn
//!   tails truncated) restores a bit-identical collection at the same
//!   epoch. See DESIGN §13 for the ordering argument.
//! * [`service`] — the endpoints (`select` / `query` / `update`), each
//!   wrapped in a run-scoped trace journal run, with latency histograms
//!   and in-flight/queue-depth gauges in the observe registry.
//! * [`harness`] — a deterministic closed-loop load generator used by
//!   the `exp_serve` benchmark and the CLI `serve` smoke command.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod cache;
#[cfg(test)]
mod crash_tests;
pub mod durable;
pub mod harness;
pub mod service;
pub mod snapshot;

pub use admission::{Admission, AdmissionConfig, Permit};
pub use cache::{CollectionFingerprint, PatternSetCache, SelectKey};
pub use durable::{collection_digest, DurabilityConfig, DurableLog, RecoveryReport};
pub use harness::{run_load, EndpointStats, LoadParams, LoadReport};
pub use midas::CensusMode;
pub use service::{
    pattern_codes, reference_select, MaintenanceMode, QueryHit, QueryMatches, QueryResponse,
    SelectResponse, SelectorKind, ServeConfig, ServeError, UpdateReport, UpdateResponse,
    VqiService,
};
pub use snapshot::{Snapshot, SnapshotStore};
