//! Property-based tests of the modular pipeline: every stage assembly
//! honors the selection contract on random collections.

use proptest::prelude::*;
use vqi_core::budget::PatternBudget;
use vqi_core::repo::GraphCollection;
use vqi_core::score::{pattern_coverage, QualityWeights};
use vqi_graph::traversal::is_connected;
use vqi_modular::{
    ClosureMerge, KMedoidsStage, LeaderStage, ModularPipeline, SampleExtract, UnionMerge,
    WalkExtract,
};

fn pipeline(ix: u8) -> ModularPipeline {
    ModularPipeline {
        similarity: Box::new(vqi_mining::similarity::EdgeTripleJaccard),
        clustering: if ix & 1 == 0 {
            Box::new(KMedoidsStage::default())
        } else {
            Box::new(LeaderStage::default())
        },
        merger: if ix & 2 == 0 {
            Box::new(ClosureMerge)
        } else {
            Box::new(UnionMerge)
        },
        extractor: if ix & 4 == 0 {
            Box::new(WalkExtract::default())
        } else {
            Box::new(SampleExtract::default())
        },
        weights: QualityWeights::default(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// For random molecule-like collections and any stage assembly, the
    /// pipeline returns budget-admissible, connected, occurring patterns.
    #[test]
    fn assembly_contract(seed in 0u64..500, assembly in 0u8..8) {
        let graphs = vqi_datasets::aids_like(vqi_datasets::MoleculeParams {
            count: 20,
            max_rings: 1,
            max_chains: 2,
            max_chain_len: 2,
            seed,
        });
        let col = GraphCollection::new(graphs);
        let budget = PatternBudget::new(4, 4, 6);
        let set = pipeline(assembly).run(&col, &budget);
        prop_assert!(set.len() <= 4);
        for p in set.patterns() {
            prop_assert!(budget.admits(&p.graph));
            prop_assert!(is_connected(&p.graph));
            prop_assert!(
                pattern_coverage(&p.graph, &col) > 0.0,
                "assembly {assembly}: non-occurring pattern selected"
            );
        }
    }
}
