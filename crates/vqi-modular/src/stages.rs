//! The four swappable pipeline stages and their implementations.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use vqi_core::budget::PatternBudget;
use vqi_graph::traversal::{is_connected, sample_connected_subgraph, weighted_random_walk};
use vqi_graph::{Graph, NodeId};
use vqi_mining::closure::closure_of;
use vqi_mining::cluster::{k_medoids, leader, Clustering, DistanceMatrix};

// The similarity stage is [`vqi_mining::similarity::SimilarityMeasure`];
// this module re-exports it for pipeline assembly convenience.
pub use vqi_mining::similarity::{
    EdgeTripleJaccard, FeatureCosine, McsSimilarity, SimilarityMeasure,
};

/// Stage 2: clustering of the collection under a distance matrix.
pub trait ClusteringStage: Send + Sync {
    /// Clusters `dist.len()` items.
    fn cluster(&self, dist: &DistanceMatrix) -> Clustering;
    /// Stage name for reports.
    fn name(&self) -> &'static str;
}

/// PAM-style k-medoids clustering stage.
#[derive(Debug, Clone, Copy)]
pub struct KMedoidsStage {
    /// Number of clusters; `None` picks `⌈√(n/2)⌉`.
    pub k: Option<usize>,
    /// Iterations.
    pub iters: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for KMedoidsStage {
    fn default() -> Self {
        KMedoidsStage {
            k: None,
            iters: 15,
            seed: 17,
        }
    }
}

impl ClusteringStage for KMedoidsStage {
    fn cluster(&self, dist: &DistanceMatrix) -> Clustering {
        let n = dist.len();
        let k = self
            .k
            .unwrap_or_else(|| ((n as f64 / 2.0).sqrt().ceil() as usize).max(1));
        let mut rng = SmallRng::seed_from_u64(self.seed);
        k_medoids(dist, k, self.iters, &mut rng)
    }

    fn name(&self) -> &'static str {
        "k-medoids"
    }
}

/// Single-pass leader clustering stage.
#[derive(Debug, Clone, Copy)]
pub struct LeaderStage {
    /// Join threshold (distance).
    pub threshold: f64,
}

impl Default for LeaderStage {
    fn default() -> Self {
        LeaderStage { threshold: 0.5 }
    }
}

impl ClusteringStage for LeaderStage {
    fn cluster(&self, dist: &DistanceMatrix) -> Clustering {
        leader(dist, self.threshold)
    }

    fn name(&self) -> &'static str {
        "leader"
    }
}

/// Stage 3: merging a cluster into one continuous graph.
pub trait MergeStage: Send + Sync {
    /// Merges the member graphs; returns the continuous graph and
    /// per-edge weights (contribution counts where meaningful).
    fn merge(&self, members: &[&Graph]) -> (Graph, Vec<f64>);
    /// Stage name for reports.
    fn name(&self) -> &'static str;
}

/// Merge by iterated graph closure (CATAPULT-style CSG).
#[derive(Debug, Clone, Copy, Default)]
pub struct ClosureMerge;

impl MergeStage for ClosureMerge {
    fn merge(&self, members: &[&Graph]) -> (Graph, Vec<f64>) {
        match closure_of(members) {
            Some(c) => (c.graph, c.edge_weights),
            None => (Graph::new(), vec![]),
        }
    }

    fn name(&self) -> &'static str {
        "closure"
    }
}

/// Merge by disjoint union (no alignment; candidates stay literal).
#[derive(Debug, Clone, Copy, Default)]
pub struct UnionMerge;

impl MergeStage for UnionMerge {
    fn merge(&self, members: &[&Graph]) -> (Graph, Vec<f64>) {
        let mut g = Graph::new();
        for m in members {
            let base = g.node_count() as u32;
            for v in m.nodes() {
                g.add_node(m.node_label(v));
            }
            for e in m.edges() {
                let (u, v) = m.endpoints(e);
                g.add_edge(NodeId(base + u.0), NodeId(base + v.0), m.edge_label(e));
            }
        }
        let w = vec![1.0; g.edge_count()];
        (g, w)
    }

    fn name(&self) -> &'static str {
        "union"
    }
}

/// Stage 4: candidate extraction from a continuous graph.
pub trait ExtractStage: Send + Sync {
    /// Extracts budget-admissible connected candidates.
    fn extract(
        &self,
        continuous: &Graph,
        edge_weights: &[f64],
        budget: &PatternBudget,
    ) -> Vec<Graph>;
    /// Stage name for reports.
    fn name(&self) -> &'static str;
}

/// Extraction by uniform connected-subgraph sampling.
#[derive(Debug, Clone, Copy)]
pub struct SampleExtract {
    /// Sampling attempts.
    pub samples: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SampleExtract {
    fn default() -> Self {
        SampleExtract {
            samples: 80,
            seed: 23,
        }
    }
}

impl ExtractStage for SampleExtract {
    fn extract(
        &self,
        continuous: &Graph,
        _edge_weights: &[f64],
        budget: &PatternBudget,
    ) -> Vec<Graph> {
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let mut out = Vec::new();
        for _ in 0..self.samples {
            let size = rand::Rng::gen_range(&mut rng, budget.min_size..=budget.max_size);
            if let Some((sub, _)) = sample_connected_subgraph(continuous, size, 5, &mut rng) {
                if budget.admits(&sub) && is_connected(&sub) {
                    out.push(sub);
                }
            }
        }
        out
    }

    fn name(&self) -> &'static str {
        "sample"
    }
}

/// Extraction by weighted random walks (biased toward shared structure).
#[derive(Debug, Clone, Copy)]
pub struct WalkExtract {
    /// Number of walks.
    pub walks: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WalkExtract {
    fn default() -> Self {
        WalkExtract {
            walks: 80,
            seed: 29,
        }
    }
}

impl ExtractStage for WalkExtract {
    fn extract(
        &self,
        continuous: &Graph,
        edge_weights: &[f64],
        budget: &PatternBudget,
    ) -> Vec<Graph> {
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let nodes: Vec<NodeId> = continuous
            .nodes()
            .filter(|&v| continuous.degree(v) > 0)
            .collect();
        if nodes.is_empty() {
            return vec![];
        }
        let weight = |e: vqi_graph::EdgeId| edge_weights.get(e.index()).copied().unwrap_or(1.0);
        let mut out = Vec::new();
        for i in 0..self.walks {
            let start = nodes[i % nodes.len()];
            let target = rand::Rng::gen_range(&mut rng, budget.min_size..=budget.max_size);
            let walk = weighted_random_walk(continuous, start, 3 * target, &weight, &mut rng);
            let mut visited: Vec<NodeId> = Vec::new();
            for e in &walk {
                let (u, v) = continuous.endpoints(*e);
                for n in [u, v] {
                    if !visited.contains(&n) {
                        visited.push(n);
                    }
                }
                if visited.len() >= target {
                    break;
                }
            }
            if visited.len() == target {
                let (sub, _) = continuous.induced_subgraph(&visited);
                if budget.admits(&sub) && is_connected(&sub) {
                    out.push(sub);
                }
            }
        }
        out
    }

    fn name(&self) -> &'static str {
        "walk"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vqi_graph::generate::{chain, clique, cycle};

    #[test]
    fn kmedoids_stage_clusters() {
        let d = DistanceMatrix::from_fn(4, |i, j| if (i < 2) == (j < 2) { 0.1 } else { 0.9 });
        let c = KMedoidsStage {
            k: Some(2),
            ..Default::default()
        }
        .cluster(&d);
        assert_eq!(c.cluster_count(), 2);
        assert_eq!(c.assignments[0], c.assignments[1]);
        assert_ne!(c.assignments[0], c.assignments[2]);
    }

    #[test]
    fn leader_stage_clusters() {
        let d = DistanceMatrix::from_fn(4, |i, j| if (i < 2) == (j < 2) { 0.1 } else { 0.9 });
        let c = LeaderStage { threshold: 0.5 }.cluster(&d);
        assert_eq!(c.cluster_count(), 2);
    }

    #[test]
    fn union_merge_concatenates() {
        let a = chain(3, 1, 0);
        let b = cycle(3, 2, 0);
        let (m, w) = UnionMerge.merge(&[&a, &b]);
        assert_eq!(m.node_count(), 6);
        assert_eq!(m.edge_count(), 5);
        assert_eq!(w.len(), 5);
    }

    #[test]
    fn closure_merge_compacts() {
        let a = chain(4, 1, 0);
        let b = chain(4, 1, 0);
        let (m, _) = ClosureMerge.merge(&[&a, &b]);
        assert_eq!(m.node_count(), 4, "identical graphs align fully");
    }

    #[test]
    fn extractors_respect_budget() {
        let g = clique(10, 1, 0);
        let budget = PatternBudget::new(8, 4, 5);
        for cands in [
            SampleExtract::default().extract(&g, &vec![1.0; g.edge_count()], &budget),
            WalkExtract::default().extract(&g, &vec![1.0; g.edge_count()], &budget),
        ] {
            assert!(!cands.is_empty());
            for c in &cands {
                assert!(budget.admits(c));
                assert!(is_connected(c));
            }
        }
    }

    #[test]
    fn extractors_handle_empty_graphs() {
        let budget = PatternBudget::default();
        assert!(SampleExtract::default()
            .extract(&Graph::new(), &[], &budget)
            .is_empty());
        assert!(WalkExtract::default()
            .extract(&Graph::new(), &[], &budget)
            .is_empty());
    }
}
