//! Composition of the four stages into a [`PatternSelector`].

use crate::stages::{ClusteringStage, ExtractStage, MergeStage};
use rayon::prelude::*;
use vqi_core::budget::PatternBudget;
use vqi_core::pattern::{PatternKind, PatternSet};
use vqi_core::repo::{GraphCollection, GraphRepository};
use vqi_core::score::{cognitive_load, covers, QualityWeights};
use vqi_core::selector::PatternSelector;
use vqi_graph::canon::canonical_code;
use vqi_graph::mcs::mcs_similarity;
use vqi_graph::Graph;
use vqi_mining::cluster::DistanceMatrix;
use vqi_mining::similarity::SimilarityMeasure;

/// A fully assembled modular pipeline.
pub struct ModularPipeline {
    /// Stage 1: graph similarity.
    pub similarity: Box<dyn SimilarityMeasure>,
    /// Stage 2: clustering.
    pub clustering: Box<dyn ClusteringStage>,
    /// Stage 3: cluster merging into continuous graphs.
    pub merger: Box<dyn MergeStage>,
    /// Stage 4: candidate extraction.
    pub extractor: Box<dyn ExtractStage>,
    /// Final-selection score weights.
    pub weights: QualityWeights,
}

impl ModularPipeline {
    /// The default assembly: edge-triple Jaccard similarity, k-medoids,
    /// closure merge, weighted-walk extraction.
    pub fn standard() -> Self {
        ModularPipeline {
            similarity: Box::new(crate::stages::EdgeTripleJaccard),
            clustering: Box::new(crate::stages::KMedoidsStage::default()),
            merger: Box::new(crate::stages::ClosureMerge),
            extractor: Box::new(crate::stages::WalkExtract::default()),
            weights: QualityWeights::default(),
        }
    }

    /// A human-readable description of the assembly.
    pub fn describe(&self) -> String {
        format!(
            "{} / {} / {} / {}",
            self.similarity.name(),
            self.clustering.name(),
            self.merger.name(),
            self.extractor.name()
        )
    }

    /// Runs the pipeline on a collection.
    pub fn run(&self, collection: &GraphCollection, budget: &PatternBudget) -> PatternSet {
        let _run = vqi_observe::span("modular.run");
        let ids = collection.ids();
        let n = ids.len();
        if n == 0 {
            return PatternSet::new();
        }
        let graphs: Vec<&Graph> = ids
            .iter()
            .map(|&id| collection.get(id).expect("live id"))
            .collect();

        // stage 1 + 2: similarity -> distance -> clustering
        let dist = {
            let _s = vqi_observe::span!("modular.similarity.{}", self.similarity.name());
            DistanceMatrix::from_fn(n, |i, j| {
                1.0 - self.similarity.similarity(graphs[i], graphs[j])
            })
        };
        let clustering = {
            let _s = vqi_observe::span!("modular.cluster.{}", self.clustering.name());
            self.clustering.cluster(&dist)
        };
        vqi_observe::incr(
            "modular.clusters",
            clustering
                .clusters()
                .iter()
                .filter(|m| !m.is_empty())
                .count() as u64,
        );

        // stage 3: merge each cluster into a continuous graph
        let merge_span = vqi_observe::span!("modular.merge.{}", self.merger.name());
        let merged: Vec<(Graph, Vec<f64>)> = clustering
            .clusters()
            .into_iter()
            .filter(|m| !m.is_empty())
            .map(|members| {
                let cluster_graphs: Vec<&Graph> = members.iter().map(|&pos| graphs[pos]).collect();
                self.merger.merge(&cluster_graphs)
            })
            .collect();
        drop(merge_span);

        // stage 4: extract candidates
        let extract_span = vqi_observe::span!("modular.extract.{}", self.extractor.name());
        let mut candidates: Vec<Graph> = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for (cg, weights) in &merged {
            for cand in self.extractor.extract(cg, weights, budget) {
                let code = canonical_code(&cand);
                if seen.insert(code) {
                    candidates.push(cand);
                }
            }
        }
        drop(extract_span);
        vqi_observe::incr("modular.candidates", candidates.len() as u64);

        // common final selection: greedy coverage/diversity/cognitive-load
        let _select = vqi_observe::span("modular.select");
        let bitsets: Vec<(Graph, Vec<bool>, f64)> = candidates
            .into_par_iter()
            .filter_map(|c| {
                let cov: Vec<bool> = ids
                    .iter()
                    .map(|&id| covers(&c, collection.get(id).expect("live")))
                    .collect();
                if cov.iter().any(|&b| b) {
                    let cl = cognitive_load(&c);
                    Some((c, cov, cl))
                } else {
                    None
                }
            })
            .collect();

        let mut set = PatternSet::new();
        let mut pool = bitsets;
        let mut covered = vec![false; n];
        let mut chosen: Vec<Graph> = Vec::new();
        while set.len() < budget.count && !pool.is_empty() {
            let scores: Vec<f64> = pool
                .par_iter()
                .map(|(g, cov, cl)| {
                    let gain = cov
                        .iter()
                        .zip(covered.iter())
                        .filter(|(&c, &d)| c && !d)
                        .count() as f64
                        / n as f64;
                    let div = if chosen.is_empty() {
                        1.0
                    } else {
                        1.0 - chosen
                            .iter()
                            .map(|q| mcs_similarity(g, q))
                            .fold(0.0f64, f64::max)
                    };
                    gain + self.weights.diversity * div - self.weights.cognitive * cl
                })
                .collect();
            let (bi, &best) = scores
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
                .expect("nonempty");
            let gains = pool[bi]
                .1
                .iter()
                .zip(covered.iter())
                .any(|(&c, &d)| c && !d);
            if best <= 0.0 && !gains {
                break;
            }
            let (g, cov, _) = pool.swap_remove(bi);
            for (i, &c) in cov.iter().enumerate() {
                if c {
                    covered[i] = true;
                }
            }
            let prov = format!("modular:{}", self.describe());
            if set.insert(g.clone(), PatternKind::Canned, prov).is_ok() {
                chosen.push(g);
            }
        }
        vqi_observe::incr("modular.selected", set.len() as u64);
        set
    }
}

impl PatternSelector for ModularPipeline {
    fn name(&self) -> &'static str {
        "modular"
    }

    fn select(&self, repo: &GraphRepository, budget: &PatternBudget) -> PatternSet {
        match repo {
            GraphRepository::Collection(c) => self.run(c, budget),
            GraphRepository::Network(g) => {
                let col = GraphCollection::new(vec![g.clone()]);
                self.run(&col, budget)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stages::*;
    use vqi_graph::generate::{chain, cycle, star};
    use vqi_graph::traversal::is_connected;

    fn collection() -> GraphCollection {
        let mut graphs = Vec::new();
        for i in 0..5 {
            graphs.push(chain(5 + i % 3, 1, 0));
            graphs.push(cycle(5 + i % 2, 2, 0));
            graphs.push(star(4 + i % 2, 3, 0));
        }
        GraphCollection::new(graphs)
    }

    #[test]
    fn standard_pipeline_selects_valid_patterns() {
        let col = collection();
        let budget = PatternBudget::new(5, 4, 6);
        let set = ModularPipeline::standard().run(&col, &budget);
        assert!(!set.is_empty());
        for p in set.patterns() {
            assert!(budget.admits(&p.graph));
            assert!(is_connected(&p.graph));
            assert!(p.provenance.starts_with("modular:"));
        }
    }

    #[test]
    fn every_assembly_combination_runs() {
        let col = collection();
        let budget = PatternBudget::new(3, 4, 5);
        let sims: Vec<Box<dyn SimilarityMeasure>> =
            vec![Box::new(EdgeTripleJaccard), Box::new(McsSimilarity)];
        for sim in sims {
            for leader in [false, true] {
                for union_merge in [false, true] {
                    for sample in [false, true] {
                        let p = ModularPipeline {
                            similarity: match sim.name() {
                                "mcs" => Box::new(McsSimilarity),
                                _ => Box::new(EdgeTripleJaccard),
                            },
                            clustering: if leader {
                                Box::new(LeaderStage::default())
                            } else {
                                Box::new(KMedoidsStage::default())
                            },
                            merger: if union_merge {
                                Box::new(UnionMerge)
                            } else {
                                Box::new(ClosureMerge)
                            },
                            extractor: if sample {
                                Box::new(SampleExtract::default())
                            } else {
                                Box::new(WalkExtract::default())
                            },
                            weights: QualityWeights::default(),
                        };
                        let set = p.run(&col, &budget);
                        assert!(
                            !set.is_empty(),
                            "assembly {} selected nothing",
                            p.describe()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn describe_names_all_stages() {
        let d = ModularPipeline::standard().describe();
        assert_eq!(d, "edge-triple-jaccard / k-medoids / closure / walk");
    }

    #[test]
    fn empty_collection() {
        let set = ModularPipeline::standard()
            .run(&GraphCollection::new(vec![]), &PatternBudget::default());
        assert!(set.is_empty());
    }
}
