//! Composition of the four stages into a [`PatternSelector`].

use crate::stages::{ClusteringStage, ExtractStage, MergeStage};
use vqi_core::bitset::BitSet;
use vqi_core::budget::PatternBudget;
use vqi_core::pattern::{PatternKind, PatternSet};
use vqi_core::repo::{GraphCollection, GraphRepository};
use vqi_core::score::{cognitive_load, covers_cached_indexed, QualityWeights};
use vqi_core::selector::PatternSelector;
use vqi_graph::cache::mcs_similarity_cached_bounded;
use vqi_graph::canon::{canonical_codes, CanonicalCode};
use vqi_graph::index::GraphIndex;
use vqi_graph::par;
use vqi_graph::Graph;
use vqi_mining::cluster::DistanceMatrix;
use vqi_mining::similarity::SimilarityMeasure;

/// A fully assembled modular pipeline.
pub struct ModularPipeline {
    /// Stage 1: graph similarity.
    pub similarity: Box<dyn SimilarityMeasure>,
    /// Stage 2: clustering.
    pub clustering: Box<dyn ClusteringStage>,
    /// Stage 3: cluster merging into continuous graphs.
    pub merger: Box<dyn MergeStage>,
    /// Stage 4: candidate extraction.
    pub extractor: Box<dyn ExtractStage>,
    /// Final-selection score weights.
    pub weights: QualityWeights,
}

impl ModularPipeline {
    /// The default assembly: edge-triple Jaccard similarity, k-medoids,
    /// closure merge, weighted-walk extraction.
    pub fn standard() -> Self {
        ModularPipeline {
            similarity: Box::new(crate::stages::EdgeTripleJaccard),
            clustering: Box::new(crate::stages::KMedoidsStage::default()),
            merger: Box::new(crate::stages::ClosureMerge),
            extractor: Box::new(crate::stages::WalkExtract::default()),
            weights: QualityWeights::default(),
        }
    }

    /// A human-readable description of the assembly.
    pub fn describe(&self) -> String {
        format!(
            "{} / {} / {} / {}",
            self.similarity.name(),
            self.clustering.name(),
            self.merger.name(),
            self.extractor.name()
        )
    }

    /// Runs the pipeline on a collection.
    pub fn run(&self, collection: &GraphCollection, budget: &PatternBudget) -> PatternSet {
        let _run = vqi_observe::span("modular.run");
        let ids = collection.ids();
        let n = ids.len();
        if n == 0 {
            return PatternSet::new();
        }
        let graphs: Vec<&Graph> = ids
            .iter()
            .map(|&id| collection.get(id).expect("live id"))
            .collect();

        // stage 1 + 2: similarity -> distance -> clustering
        let dist = {
            let _s = vqi_observe::span!("modular.similarity.{}", self.similarity.name());
            DistanceMatrix::from_fn(n, |i, j| {
                1.0 - self.similarity.similarity(graphs[i], graphs[j])
            })
        };
        let clustering = {
            let _s = vqi_observe::span!("modular.cluster.{}", self.clustering.name());
            self.clustering.cluster(&dist)
        };
        vqi_observe::incr(
            "modular.clusters",
            clustering
                .clusters()
                .iter()
                .filter(|m| !m.is_empty())
                .count() as u64,
        );

        // stage 3: merge each cluster into a continuous graph
        let merge_span = vqi_observe::span!("modular.merge.{}", self.merger.name());
        let merged: Vec<(Graph, Vec<f64>)> = clustering
            .clusters()
            .into_iter()
            .filter(|m| !m.is_empty())
            .map(|members| {
                let cluster_graphs: Vec<&Graph> = members.iter().map(|&pos| graphs[pos]).collect();
                self.merger.merge(&cluster_graphs)
            })
            .collect();
        drop(merge_span);

        // stage 4: extract candidates (sequential sampling preserves the
        // extractor's RNG stream), then batch-canonicalize and dedup in
        // extraction order — identical output, parallel canonicalization
        let extract_span = vqi_observe::span!("modular.extract.{}", self.extractor.name());
        let mut raw: Vec<Graph> = Vec::new();
        for (cg, weights) in &merged {
            raw.extend(self.extractor.extract(cg, weights, budget));
        }
        let codes = canonical_codes(&raw);
        let mut candidates: Vec<(Graph, CanonicalCode)> = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for (cand, code) in raw.into_iter().zip(codes) {
            if seen.insert(code.clone()) {
                candidates.push((cand, code));
            }
        }
        drop(extract_span);
        vqi_observe::incr("modular.candidates", candidates.len() as u64);

        // common final selection: greedy coverage/diversity/cognitive-load
        let _select = vqi_observe::span("modular.select");
        // one label index per live graph, shared across all candidates
        let indexes = GraphIndex::build_many(&graphs);
        let coverages: Vec<Option<BitSet>> = par::map(&candidates, |(c, code)| {
            let mut cov = BitSet::new(ids.len());
            for (pos, &id) in ids.iter().enumerate() {
                let g = collection.get(id).expect("live");
                let token = collection.token(id).expect("live");
                if covers_cached_indexed(c, code, g, token, &indexes[pos]) {
                    cov.set(pos);
                }
            }
            cov.any().then_some(cov)
        });
        let bitsets: Vec<(Graph, CanonicalCode, BitSet, f64)> = candidates
            .into_iter()
            .zip(coverages)
            .filter_map(|((c, code), cov)| {
                let cov = cov?;
                let cl = cognitive_load(&c);
                Some((c, code, cov, cl))
            })
            .collect();

        let mut set = PatternSet::new();
        let mut pool = bitsets;
        let mut covered = BitSet::new(n);
        // incremental greedy: running max similarity to the chosen set,
        // folded forward one selection at a time (identical to a full
        // per-round recomputation of the maximum)
        let mut max_sim: Vec<f64> = vec![0.0; pool.len()];
        while set.len() < budget.count && !pool.is_empty() {
            let scores: Vec<f64> = par::map_range(pool.len(), |i| {
                let (_, _, cov, cl) = &pool[i];
                let gain = cov.count_and_not(&covered) as f64 / n as f64;
                let div = 1.0 - max_sim[i];
                gain + self.weights.diversity * div - self.weights.cognitive * cl
            });
            let (bi, &best) = scores
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .expect("nonempty");
            let gains = pool[bi].2.any_and_not(&covered);
            if best <= 0.0 && !gains {
                break;
            }
            let (g, code, cov, _) = pool.swap_remove(bi);
            max_sim.swap_remove(bi);
            covered.union_with(&cov);
            let prov = format!("modular:{}", self.describe());
            if set.insert(g.clone(), PatternKind::Canned, prov).is_ok() {
                vqi_observe::incr("modular.greedy.sim_calls", pool.len() as u64);
                let sims: Vec<f64> = par::map_range(pool.len(), |i| {
                    let (pg, pcode, _, _) = &pool[i];
                    mcs_similarity_cached_bounded(pg, pcode, &g, &code, max_sim[i])
                });
                for (ms, s) in max_sim.iter_mut().zip(sims) {
                    *ms = f64::max(*ms, s);
                }
            }
        }
        vqi_observe::incr("modular.selected", set.len() as u64);
        set
    }
}

impl PatternSelector for ModularPipeline {
    fn name(&self) -> &'static str {
        "modular"
    }

    fn select(&self, repo: &GraphRepository, budget: &PatternBudget) -> PatternSet {
        match repo {
            GraphRepository::Collection(c) => self.run(c, budget),
            GraphRepository::Network(g) => {
                let col = GraphCollection::new(vec![g.clone()]);
                self.run(&col, budget)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stages::*;
    use vqi_graph::generate::{chain, cycle, star};
    use vqi_graph::traversal::is_connected;

    fn collection() -> GraphCollection {
        let mut graphs = Vec::new();
        for i in 0..5 {
            graphs.push(chain(5 + i % 3, 1, 0));
            graphs.push(cycle(5 + i % 2, 2, 0));
            graphs.push(star(4 + i % 2, 3, 0));
        }
        GraphCollection::new(graphs)
    }

    #[test]
    fn standard_pipeline_selects_valid_patterns() {
        let col = collection();
        let budget = PatternBudget::new(5, 4, 6);
        let set = ModularPipeline::standard().run(&col, &budget);
        assert!(!set.is_empty());
        for p in set.patterns() {
            assert!(budget.admits(&p.graph));
            assert!(is_connected(&p.graph));
            assert!(p.provenance.starts_with("modular:"));
        }
    }

    #[test]
    fn every_assembly_combination_runs() {
        let col = collection();
        let budget = PatternBudget::new(3, 4, 5);
        let sims: Vec<Box<dyn SimilarityMeasure>> =
            vec![Box::new(EdgeTripleJaccard), Box::new(McsSimilarity)];
        for sim in sims {
            for leader in [false, true] {
                for union_merge in [false, true] {
                    for sample in [false, true] {
                        let p = ModularPipeline {
                            similarity: match sim.name() {
                                "mcs" => Box::new(McsSimilarity),
                                _ => Box::new(EdgeTripleJaccard),
                            },
                            clustering: if leader {
                                Box::new(LeaderStage::default())
                            } else {
                                Box::new(KMedoidsStage::default())
                            },
                            merger: if union_merge {
                                Box::new(UnionMerge)
                            } else {
                                Box::new(ClosureMerge)
                            },
                            extractor: if sample {
                                Box::new(SampleExtract::default())
                            } else {
                                Box::new(WalkExtract::default())
                            },
                            weights: QualityWeights::default(),
                        };
                        let set = p.run(&col, &budget);
                        assert!(
                            !set.is_empty(),
                            "assembly {} selected nothing",
                            p.describe()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn bound_and_skip_changes_no_selection() {
        let col = collection();
        for count in [2, 4] {
            let budget = PatternBudget::new(count, 4, 6);
            vqi_graph::mcs::set_bound_skip_enabled(true);
            let bounded = ModularPipeline::standard().run(&col, &budget);
            vqi_graph::mcs::set_bound_skip_enabled(false);
            let exact = ModularPipeline::standard().run(&col, &budget);
            vqi_graph::mcs::set_bound_skip_enabled(true);
            assert_eq!(bounded.len(), exact.len(), "count {count}");
            for p in exact.patterns() {
                assert!(
                    bounded.contains_isomorphic(&p.graph),
                    "count {count}: exact pick missing from bounded selection"
                );
            }
        }
    }

    #[test]
    fn describe_names_all_stages() {
        let d = ModularPipeline::standard().describe();
        assert_eq!(d, "edge-triple-jaccard / k-medoids / closure / walk");
    }

    #[test]
    fn empty_collection() {
        let set = ModularPipeline::standard()
            .run(&GraphCollection::new(vec![]), &PatternBudget::default());
        assert!(set.is_empty());
    }

    #[test]
    fn selection_is_identical_across_thread_counts() {
        let col = collection();
        let budget = PatternBudget::new(4, 4, 6);
        let codes_at = |cap: usize| -> Vec<CanonicalCode> {
            vqi_graph::par::set_thread_cap(cap);
            let set = ModularPipeline::standard().run(&col, &budget);
            vqi_graph::par::set_thread_cap(0);
            let mut codes: Vec<CanonicalCode> =
                set.patterns().iter().map(|p| p.code.clone()).collect();
            codes.sort();
            codes
        };
        let one = codes_at(1);
        assert!(!one.is_empty());
        assert_eq!(one, codes_at(2), "cap 2 changed the selection");
        assert_eq!(one, codes_at(4), "cap 4 changed the selection");
        vqi_graph::par::set_parallel_enabled(false);
        let seq = ModularPipeline::standard().run(&col, &budget);
        vqi_graph::par::set_parallel_enabled(true);
        let mut seq_codes: Vec<CanonicalCode> =
            seq.patterns().iter().map(|p| p.code.clone()).collect();
        seq_codes.sort();
        assert_eq!(one, seq_codes, "sequential toggle changed the selection");
    }
}
