//! Composition of the four stages into a [`PatternSelector`].

use crate::stages::{ClusteringStage, ExtractStage, MergeStage};
use vqi_core::bitset::BitSet;
use vqi_core::budget::PatternBudget;
use vqi_core::ctrl::{run_stage, Budget, Degradation, PipelineOutcome};
use vqi_core::pattern::{PatternKind, PatternSet};
use vqi_core::repo::{GraphCollection, GraphRepository};
use vqi_core::score::{cognitive_load, covers_cached_indexed, QualityWeights};
use vqi_core::selector::PatternSelector;
use vqi_graph::cache::mcs_similarity_cached_bounded;
use vqi_graph::canon::{canonical_codes, CanonicalCode};
use vqi_graph::index::GraphIndex;
use vqi_graph::par;
use vqi_graph::Graph;
use vqi_mining::cluster::DistanceMatrix;
use vqi_mining::similarity::SimilarityMeasure;
use vqi_runtime::{fault, VqiError};

/// A fully assembled modular pipeline.
pub struct ModularPipeline {
    /// Stage 1: graph similarity.
    pub similarity: Box<dyn SimilarityMeasure>,
    /// Stage 2: clustering.
    pub clustering: Box<dyn ClusteringStage>,
    /// Stage 3: cluster merging into continuous graphs.
    pub merger: Box<dyn MergeStage>,
    /// Stage 4: candidate extraction.
    pub extractor: Box<dyn ExtractStage>,
    /// Final-selection score weights.
    pub weights: QualityWeights,
}

impl ModularPipeline {
    /// The default assembly: edge-triple Jaccard similarity, k-medoids,
    /// closure merge, weighted-walk extraction.
    pub fn standard() -> Self {
        ModularPipeline {
            similarity: Box::new(crate::stages::EdgeTripleJaccard),
            clustering: Box::new(crate::stages::KMedoidsStage::default()),
            merger: Box::new(crate::stages::ClosureMerge),
            extractor: Box::new(crate::stages::WalkExtract::default()),
            weights: QualityWeights::default(),
        }
    }

    /// A human-readable description of the assembly.
    pub fn describe(&self) -> String {
        format!(
            "{} / {} / {} / {}",
            self.similarity.name(),
            self.clustering.name(),
            self.merger.name(),
            self.extractor.name()
        )
    }

    /// Runs the pipeline on a collection.
    pub fn run(&self, collection: &GraphCollection, budget: &PatternBudget) -> PatternSet {
        // an unlimited budget cannot trip a stage, so the shared body
        // degenerates to the historical plain pipeline bit for bit
        let mut deg = Degradation::new();
        self.run_impl(collection, budget, &Budget::unlimited(), &mut deg)
            .unwrap_or_default()
    }

    /// Budget-aware pipeline: same stages as [`ModularPipeline::run`],
    /// but every stage honors `ctrl` (deadline, cancel flag, tick
    /// quotas) and is panic-isolated. When nothing trips, the outcome
    /// is `Complete` and bit-identical to the plain entry point; when a
    /// stage is cut, the pipeline keeps everything selected so far
    /// (anytime semantics) and reports the cut stages. `Err` is
    /// returned only under a fail-fast budget.
    pub fn run_ctrl(
        &self,
        collection: &GraphCollection,
        budget: &PatternBudget,
        ctrl: &Budget,
    ) -> Result<PipelineOutcome<PatternSet>, VqiError> {
        let mut deg = Degradation::new();
        let value = self.run_impl(collection, budget, ctrl, &mut deg)?;
        Ok(deg.finish(value))
    }

    /// Shared stage body of the plain and budget-aware pipelines.
    fn run_impl(
        &self,
        collection: &GraphCollection,
        budget: &PatternBudget,
        ctrl: &Budget,
        deg: &mut Degradation,
    ) -> Result<PatternSet, VqiError> {
        let _run = vqi_observe::run("modular.run");
        let ids = collection.ids();
        let n = ids.len();
        if n == 0 {
            return Ok(PatternSet::new());
        }
        let graphs: Vec<&Graph> = ids
            .iter()
            .map(|&id| collection.get(id).expect("live id"))
            .collect();

        // stage 1 + 2: similarity -> distance -> clustering
        let clustered = run_stage(ctrl, "modular.cluster", || {
            fault::maybe_panic("modular.cluster", 0);
            let dist = {
                let _s = vqi_observe::span!("modular.similarity.{}", self.similarity.name());
                DistanceMatrix::from_fn(n, |i, j| {
                    1.0 - self.similarity.similarity(graphs[i], graphs[j])
                })
            };
            let _s = vqi_observe::span!("modular.cluster.{}", self.clustering.name());
            self.clustering.cluster(&dist)
        });
        let clustering = match clustered {
            Ok(c) => c,
            Err(e) => {
                // without a clustering there is nothing to merge
                deg.absorb(ctrl, e)?;
                return Ok(PatternSet::new());
            }
        };
        vqi_observe::incr(
            "modular.clusters",
            clustering
                .clusters()
                .iter()
                .filter(|m| !m.is_empty())
                .count() as u64,
        );

        // stage 3: merge each cluster into a continuous graph
        let merged = run_stage(ctrl, "modular.merge", || {
            let _s = vqi_observe::span!("modular.merge.{}", self.merger.name());
            fault::maybe_panic("modular.merge", 0);
            clustering
                .clusters()
                .into_iter()
                .filter(|m| !m.is_empty())
                .map(|members| {
                    let cluster_graphs: Vec<&Graph> =
                        members.iter().map(|&pos| graphs[pos]).collect();
                    self.merger.merge(&cluster_graphs)
                })
                .collect::<Vec<(Graph, Vec<f64>)>>()
        });
        let merged = match merged {
            Ok(m) => m,
            Err(e) => {
                deg.absorb(ctrl, e)?;
                Vec::new()
            }
        };

        // stage 4: extract candidates (sequential sampling preserves the
        // extractor's RNG stream), then batch-canonicalize and dedup in
        // extraction order — identical output, parallel canonicalization
        let extracted = run_stage(ctrl, "modular.extract", || {
            let _s = vqi_observe::span!("modular.extract.{}", self.extractor.name());
            fault::maybe_panic("modular.extract", 0);
            let mut raw: Vec<Graph> = Vec::new();
            for (cg, weights) in &merged {
                raw.extend(self.extractor.extract(cg, weights, budget));
            }
            let codes = canonical_codes(&raw);
            let mut candidates: Vec<(Graph, CanonicalCode)> = Vec::new();
            let mut seen = std::collections::HashSet::new();
            for (cand, code) in raw.into_iter().zip(codes) {
                if seen.insert(code.clone()) {
                    candidates.push((cand, code));
                }
            }
            candidates
        });
        let candidates = match extracted {
            Ok(c) => c,
            Err(e) => {
                deg.absorb(ctrl, e)?;
                Vec::new()
            }
        };
        vqi_observe::incr("modular.candidates", candidates.len() as u64);

        // common final selection: greedy coverage/diversity/cognitive-load
        let _select = vqi_observe::span("modular.select");
        // one label index per live graph, shared across all candidates
        let indexes = GraphIndex::build_many(&graphs);
        let coverages: Vec<Option<BitSet>> = par::map(&candidates, |(c, code)| {
            let mut cov = BitSet::new(ids.len());
            for (pos, &id) in ids.iter().enumerate() {
                let g = collection.get(id).expect("live");
                let token = collection.token(id).expect("live");
                if covers_cached_indexed(c, code, g, token, &indexes[pos]) {
                    cov.set(pos);
                }
            }
            cov.any().then_some(cov)
        });
        let bitsets: Vec<(Graph, CanonicalCode, BitSet, f64)> = candidates
            .into_iter()
            .zip(coverages)
            .filter_map(|((c, code), cov)| {
                let cov = cov?;
                let cl = cognitive_load(&c);
                Some((c, code, cov, cl))
            })
            .collect();

        let mut set = PatternSet::new();
        let mut pool = bitsets;
        let mut covered = BitSet::new(n);
        // incremental greedy: running max similarity to the chosen set,
        // folded forward one selection at a time (identical to a full
        // per-round recomputation of the maximum)
        let mut max_sim: Vec<f64> = vec![0.0; pool.len()];
        // one meter for the whole selection: with a tick quota of N the
        // loop degrades after exactly N rounds, at any thread count
        let mut meter = ctrl.meter("modular.select");
        while set.len() < budget.count && !pool.is_empty() {
            let round = set.len() as u64;
            if let Err(e) = ctrl.check("modular.select").and_then(|()| meter.tick()) {
                // anytime: keep what is already selected
                deg.absorb(ctrl, e)?;
                break;
            }
            if fault::maybe_timeout("modular.select", round) {
                deg.absorb(
                    ctrl,
                    VqiError::DeadlineExceeded {
                        stage: "modular.select".into(),
                    },
                )?;
                break;
            }
            let mut scores: Vec<f64> = par::map_range(pool.len(), |i| {
                let (_, _, cov, cl) = &pool[i];
                let gain = cov.count_and_not(&covered) as f64 / n as f64;
                let div = 1.0 - max_sim[i];
                gain + self.weights.diversity * div - self.weights.cognitive * cl
            });
            for (i, s) in scores.iter_mut().enumerate() {
                // fault site keyed by (round, position) — both are pure
                // functions of the input, never of the thread count
                *s = fault::nan_score("modular.select.score", (round << 32) | i as u64, *s);
                if !s.is_finite() {
                    deg.note(
                        "modular.select",
                        format!("non-finite score sanitized in round {round}"),
                    );
                    *s = f64::NEG_INFINITY;
                }
            }
            let (bi, &best) = scores
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .expect("nonempty");
            let gains = pool[bi].2.any_and_not(&covered);
            if best <= 0.0 && !gains {
                break;
            }
            let (g, code, cov, _) = pool.swap_remove(bi);
            max_sim.swap_remove(bi);
            covered.union_with(&cov);
            let prov = format!("modular:{}", self.describe());
            if set.insert(g.clone(), PatternKind::Canned, prov).is_ok() {
                vqi_observe::incr("modular.greedy.sim_calls", pool.len() as u64);
                let sims: Vec<f64> = par::map_range(pool.len(), |i| {
                    let (pg, pcode, _, _) = &pool[i];
                    mcs_similarity_cached_bounded(pg, pcode, &g, &code, max_sim[i])
                });
                for (ms, s) in max_sim.iter_mut().zip(sims) {
                    *ms = f64::max(*ms, s);
                }
            }
        }
        vqi_observe::incr("modular.selected", set.len() as u64);
        Ok(set)
    }
}

impl PatternSelector for ModularPipeline {
    fn name(&self) -> &'static str {
        "modular"
    }

    fn select(&self, repo: &GraphRepository, budget: &PatternBudget) -> PatternSet {
        match repo {
            GraphRepository::Collection(c) => self.run(c, budget),
            GraphRepository::Network(g) => {
                let col = GraphCollection::new(vec![g.clone()]);
                self.run(&col, budget)
            }
        }
    }

    fn select_ctrl(
        &self,
        repo: &GraphRepository,
        budget: &PatternBudget,
        ctrl: &Budget,
    ) -> Result<PipelineOutcome<PatternSet>, VqiError> {
        match repo {
            GraphRepository::Collection(c) => self.run_ctrl(c, budget, ctrl),
            GraphRepository::Network(g) => {
                let col = GraphCollection::new(vec![g.clone()]);
                self.run_ctrl(&col, budget, ctrl)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stages::*;
    use vqi_graph::generate::{chain, cycle, star};
    use vqi_graph::traversal::is_connected;

    fn collection() -> GraphCollection {
        let mut graphs = Vec::new();
        for i in 0..5 {
            graphs.push(chain(5 + i % 3, 1, 0));
            graphs.push(cycle(5 + i % 2, 2, 0));
            graphs.push(star(4 + i % 2, 3, 0));
        }
        GraphCollection::new(graphs)
    }

    #[test]
    fn standard_pipeline_selects_valid_patterns() {
        let _guard = crate::fault_test_lock();
        let col = collection();
        let budget = PatternBudget::new(5, 4, 6);
        let set = ModularPipeline::standard().run(&col, &budget);
        assert!(!set.is_empty());
        for p in set.patterns() {
            assert!(budget.admits(&p.graph));
            assert!(is_connected(&p.graph));
            assert!(p.provenance.starts_with("modular:"));
        }
    }

    #[test]
    fn every_assembly_combination_runs() {
        let _guard = crate::fault_test_lock();
        let col = collection();
        let budget = PatternBudget::new(3, 4, 5);
        let sims: Vec<Box<dyn SimilarityMeasure>> =
            vec![Box::new(EdgeTripleJaccard), Box::new(McsSimilarity)];
        for sim in sims {
            for leader in [false, true] {
                for union_merge in [false, true] {
                    for sample in [false, true] {
                        let p = ModularPipeline {
                            similarity: match sim.name() {
                                "mcs" => Box::new(McsSimilarity),
                                _ => Box::new(EdgeTripleJaccard),
                            },
                            clustering: if leader {
                                Box::new(LeaderStage::default())
                            } else {
                                Box::new(KMedoidsStage::default())
                            },
                            merger: if union_merge {
                                Box::new(UnionMerge)
                            } else {
                                Box::new(ClosureMerge)
                            },
                            extractor: if sample {
                                Box::new(SampleExtract::default())
                            } else {
                                Box::new(WalkExtract::default())
                            },
                            weights: QualityWeights::default(),
                        };
                        let set = p.run(&col, &budget);
                        assert!(
                            !set.is_empty(),
                            "assembly {} selected nothing",
                            p.describe()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn bound_and_skip_changes_no_selection() {
        let _guard = crate::fault_test_lock();
        let col = collection();
        for count in [2, 4] {
            let budget = PatternBudget::new(count, 4, 6);
            vqi_graph::mcs::set_bound_skip_enabled(true);
            let bounded = ModularPipeline::standard().run(&col, &budget);
            vqi_graph::mcs::set_bound_skip_enabled(false);
            let exact = ModularPipeline::standard().run(&col, &budget);
            vqi_graph::mcs::set_bound_skip_enabled(true);
            assert_eq!(bounded.len(), exact.len(), "count {count}");
            for p in exact.patterns() {
                assert!(
                    bounded.contains_isomorphic(&p.graph),
                    "count {count}: exact pick missing from bounded selection"
                );
            }
        }
    }

    #[test]
    fn describe_names_all_stages() {
        let d = ModularPipeline::standard().describe();
        assert_eq!(d, "edge-triple-jaccard / k-medoids / closure / walk");
    }

    #[test]
    fn empty_collection() {
        let _guard = crate::fault_test_lock();
        let set = ModularPipeline::standard()
            .run(&GraphCollection::new(vec![]), &PatternBudget::default());
        assert!(set.is_empty());
    }

    #[test]
    fn selection_is_identical_across_thread_counts() {
        let _guard = crate::fault_test_lock();
        let col = collection();
        let budget = PatternBudget::new(4, 4, 6);
        let codes_at = |cap: usize| -> Vec<CanonicalCode> {
            vqi_graph::par::set_thread_cap(cap);
            let set = ModularPipeline::standard().run(&col, &budget);
            vqi_graph::par::set_thread_cap(0);
            let mut codes: Vec<CanonicalCode> =
                set.patterns().iter().map(|p| p.code.clone()).collect();
            codes.sort();
            codes
        };
        let one = codes_at(1);
        assert!(!one.is_empty());
        assert_eq!(one, codes_at(2), "cap 2 changed the selection");
        assert_eq!(one, codes_at(4), "cap 4 changed the selection");
        vqi_graph::par::set_parallel_enabled(false);
        let seq = ModularPipeline::standard().run(&col, &budget);
        vqi_graph::par::set_parallel_enabled(true);
        let mut seq_codes: Vec<CanonicalCode> =
            seq.patterns().iter().map(|p| p.code.clone()).collect();
        seq_codes.sort();
        assert_eq!(one, seq_codes, "sequential toggle changed the selection");
    }

    #[test]
    fn observability_is_identical_across_thread_counts() {
        let _guard = crate::fault_test_lock();
        let col = collection();
        let budget = PatternBudget::new(4, 4, 6);
        // warm-up fills the kernel caches so every measured run sees
        // the same cache-hit pattern
        ModularPipeline::standard().run(&col, &budget);
        let run = || drop(ModularPipeline::standard().run(&col, &budget));
        let one = observed_aggregates(1, false, run);
        assert!(!one.0.is_empty(), "no spans recorded");
        assert!(one.1.values().sum::<u64>() > 0, "no journal events");
        assert_eq!(
            one,
            observed_aggregates(2, false, run),
            "cap 2 changed the observability output"
        );
        assert_eq!(
            one,
            observed_aggregates(4, false, run),
            "cap 4 changed the observability output"
        );
        assert_eq!(
            one,
            observed_aggregates(0, true, run),
            "sequential toggle changed the observability output"
        );
    }

    /// Runs `work` with metrics and the trace journal armed under the
    /// given thread cap (or the sequential toggle) and returns the
    /// order-normalized aggregates that must be thread-count invariant:
    /// per-name span invocation counts and the journal event multiset.
    /// Durations and `kernel.par.*` dispatch counters legitimately vary
    /// with the worker count and are deliberately excluded.
    fn observed_aggregates(
        cap: usize,
        sequential: bool,
        work: impl Fn(),
    ) -> (Vec<(String, u64)>, std::collections::BTreeMap<String, u64>) {
        if sequential {
            vqi_graph::par::set_parallel_enabled(false);
        } else {
            vqi_graph::par::set_thread_cap(cap);
        }
        vqi_observe::reset();
        vqi_observe::set_enabled(true);
        vqi_observe::set_journal_enabled(true);
        vqi_observe::journal_reset();
        work();
        let events = vqi_observe::journal_events();
        let multiset = vqi_observe::event_multiset(&events);
        let mut span_counts: Vec<(String, u64)> = vqi_observe::snapshot()
            .spans
            .iter()
            .map(|(name, h)| (name.clone(), h.count))
            .collect();
        span_counts.sort();
        vqi_observe::set_journal_enabled(false);
        vqi_observe::set_enabled(false);
        vqi_observe::journal_reset();
        vqi_observe::reset();
        if sequential {
            vqi_graph::par::set_parallel_enabled(true);
        } else {
            vqi_graph::par::set_thread_cap(0);
        }
        (span_counts, multiset)
    }

    /// Installs a fault plan and removes it on drop, so a failing
    /// assertion cannot leak the plan into other tests.
    struct PlanGuard;
    fn with_plan(plan: vqi_runtime::fault::FaultPlan) -> PlanGuard {
        vqi_runtime::fault::set_plan(plan);
        PlanGuard
    }
    impl Drop for PlanGuard {
        fn drop(&mut self) {
            vqi_runtime::fault::reset();
        }
    }

    fn codes_in_order(set: &PatternSet) -> Vec<CanonicalCode> {
        set.patterns().iter().map(|p| p.code.clone()).collect()
    }

    #[test]
    fn ctrl_with_unlimited_budget_matches_plain() {
        let _guard = crate::fault_test_lock();
        let col = collection();
        let budget = PatternBudget::new(4, 4, 6);
        let plain = ModularPipeline::standard().run(&col, &budget);
        let out = ModularPipeline::standard()
            .run_ctrl(&col, &budget, &Budget::unlimited())
            .expect("unlimited budget cannot fail");
        assert!(out.completeness.is_complete());
        assert_eq!(codes_in_order(&plain), codes_in_order(&out.value));
    }

    #[test]
    fn select_quota_cancels_mid_selection_deterministically() {
        let _guard = crate::fault_test_lock();
        let col = collection();
        let budget = PatternBudget::new(4, 4, 6);
        let full = ModularPipeline::standard().run(&col, &budget);
        assert!(full.len() >= 3, "need enough rounds to cut");
        // the selection meter ticks once per round: a 2-tick quota
        // keeps exactly the first two picks, at any thread count
        let ctrl = Budget::unlimited().with_kernel_ticks(2);
        let mut per_cap = Vec::new();
        for cap in [1usize, 2, 4] {
            vqi_graph::par::set_thread_cap(cap);
            let out = ModularPipeline::standard()
                .run_ctrl(&col, &budget, &ctrl)
                .expect("not fail-fast");
            vqi_graph::par::set_thread_cap(0);
            assert!(!out.completeness.is_complete(), "cap {cap} should degrade");
            per_cap.push(codes_in_order(&out.value));
        }
        assert_eq!(per_cap[0], per_cap[1]);
        assert_eq!(per_cap[0], per_cap[2]);
        assert_eq!(per_cap[0].len(), 2);
        // the degraded set is a prefix of the full selection
        assert_eq!(&per_cap[0][..], &codes_in_order(&full)[..2]);
    }

    #[test]
    fn injected_faults_degrade_deterministically() {
        let _guard = crate::fault_test_lock();
        let col = collection();
        let budget = PatternBudget::new(4, 4, 6);
        for (panic_rate, timeout_rate) in [(1.0, 0.0), (0.0, 1.0)] {
            for seed in [1u64, 2] {
                let mut runs = Vec::new();
                for cap in [1usize, 2, 4] {
                    let _plan = with_plan(vqi_runtime::fault::FaultPlan {
                        seed,
                        panic_rate,
                        timeout_rate,
                        ..Default::default()
                    });
                    vqi_graph::par::set_thread_cap(cap);
                    let out = ModularPipeline::standard()
                        .run_ctrl(&col, &budget, &Budget::unlimited())
                        .expect("faults must be absorbed, not propagated");
                    vqi_graph::par::set_thread_cap(0);
                    assert!(
                        !out.completeness.is_complete(),
                        "seed {seed} cap {cap}: total fault plan must degrade"
                    );
                    runs.push((codes_in_order(&out.value), out.completeness));
                }
                assert_eq!(runs[0], runs[1], "seed {seed}");
                assert_eq!(runs[0], runs[2], "seed {seed}");
            }
        }
    }

    #[test]
    fn fail_fast_propagates_the_first_fault() {
        let _guard = crate::fault_test_lock();
        let col = collection();
        let budget = PatternBudget::new(4, 4, 6);
        let _plan = with_plan(vqi_runtime::fault::FaultPlan {
            seed: 3,
            panic_rate: 1.0,
            ..Default::default()
        });
        let ctrl = Budget::unlimited().with_fail_fast(true);
        let out = ModularPipeline::standard().run_ctrl(&col, &budget, &ctrl);
        assert!(out.is_err(), "fail-fast must propagate the stage fault");
    }
}
