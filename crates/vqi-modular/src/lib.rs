//! A highly modular architecture for the canned-pattern selection problem
//! (Tzanikos, Krommyda & Kantere, DEXA 2021, as surveyed in §2.3).
//!
//! The insight of that work is architectural rather than algorithmic: the
//! selection problem decomposes into four independently swappable
//! modules —
//!
//! 1. a **similarity** measure between data graphs,
//! 2. a **clustering** of the collection under that similarity,
//! 3. a **merger** that folds each cluster into one *continuous graph*,
//! 4. an **extractor** that draws candidate patterns from the continuous
//!    graphs —
//!
//! followed by a common greedy selection under the standard
//! coverage/diversity/cognitive-load score. Each module is a trait here
//! ([`stages`]), with at least two implementations, and
//! [`pipeline::ModularPipeline`] composes any combination into a
//! [`vqi_core::PatternSelector`]. Experiment E8 ablates the module
//! choices.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod pipeline;
pub mod stages;

pub use pipeline::ModularPipeline;
pub use stages::{
    ClosureMerge, ClusteringStage, ExtractStage, KMedoidsStage, LeaderStage, MergeStage,
    SampleExtract, UnionMerge, WalkExtract,
};

/// Serializes tests against the process-global fault-injection plan:
/// any test that runs a pipeline (whose stage bodies contain fault
/// sites) must not race a test that installs a plan.
#[cfg(test)]
pub(crate) fn fault_test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}
