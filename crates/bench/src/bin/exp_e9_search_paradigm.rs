//! E9 — top-down vs bottom-up search support (§2.1). A *top-down* user
//! has the query topology in-the-head and only pays formulation cost. A
//! *bottom-up* user must first discover a structure worth querying:
//! with a Pattern Panel she scans the panel (seconds); without one she
//! browses raw data graphs until she sees a subgraph of interest —
//! the "hairball browsing" cost the tutorial calls cognitively
//! challenging. We charge a fixed visual-inspection cost per browsed
//! graph and count how many graphs she must inspect before the
//! structure of her eventual query first appears.

use bench::{print_table, write_json};
use catapult::Catapult;
use serde::Serialize;
use vqi_core::budget::PatternBudget;
use vqi_core::repo::GraphRepository;
use vqi_core::score::coverage_match_options;
use vqi_core::vqi::VisualQueryInterface;
use vqi_datasets::{aids_like, MoleculeParams};
use vqi_graph::iso::is_subgraph_isomorphic;
use vqi_sim::cost::ActionCosts;
use vqi_sim::plan::plan_with_patterns;
use vqi_sim::workload::{sample_queries, WorkloadParams};

/// Seconds to visually inspect one data graph while browsing.
const INSPECT_COST: f64 = 4.0;

#[derive(Serialize)]
struct Row {
    query_size: usize,
    topdown_time: f64,
    bottomup_with_patterns: f64,
    bottomup_without_patterns: f64,
    graphs_browsed: f64,
}

fn main() {
    let graphs = aids_like(MoleculeParams {
        count: 150,
        seed: 909,
        ..Default::default()
    });
    let repo = GraphRepository::collection(graphs.clone());
    let budget = PatternBudget::new(8, 4, 8);
    let vqi = VisualQueryInterface::data_driven(&repo, &Catapult::default(), &budget);
    let costs = ActionCosts::default();
    let panel = vqi.pattern_set().len();

    let mut rows = Vec::new();
    for query_size in [4usize, 6, 8] {
        let queries = sample_queries(
            &repo,
            &WorkloadParams {
                count: 12,
                sizes: vec![query_size],
                seed: 40 + query_size as u64,
            },
        );
        let mut td = 0.0;
        let mut bu_with = 0.0;
        let mut bu_without = 0.0;
        let mut browsed_total = 0usize;
        for q in &queries {
            let plan = plan_with_patterns(q, vqi.pattern_set());
            let formulate = costs.plan_cost(&plan.ops, panel);
            // top-down: formulation only
            td += formulate;
            // bottom-up with Pattern Panel: scan the whole panel once
            bu_with += costs.scan_per_pattern * panel as f64 + formulate;
            // bottom-up without patterns: browse data graphs until the
            // query structure first appears
            let browsed = graphs
                .iter()
                .position(|g| is_subgraph_isomorphic(q, g, coverage_match_options()))
                .map_or(graphs.len(), |i| i + 1);
            browsed_total += browsed;
            bu_without += INSPECT_COST * browsed as f64 + formulate;
        }
        let n = queries.len().max(1) as f64;
        rows.push(Row {
            query_size,
            topdown_time: td / n,
            bottomup_with_patterns: bu_with / n,
            bottomup_without_patterns: bu_without / n,
            graphs_browsed: browsed_total as f64 / n,
        });
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.query_size.to_string(),
                format!("{:.1}", r.topdown_time),
                format!("{:.1}", r.bottomup_with_patterns),
                format!("{:.1}", r.bottomup_without_patterns),
                format!("{:.1}", r.graphs_browsed),
            ]
        })
        .collect();
    print_table(
        "E9: modeled time (s) by search paradigm",
        &[
            "|Q|",
            "top-down",
            "bottom-up+patterns",
            "bottom-up, no patterns",
            "graphs browsed",
        ],
        &table,
    );
    write_json("e9_search_paradigm", &rows);

    for r in &rows {
        assert!(
            r.bottomup_with_patterns < r.bottomup_without_patterns,
            "pattern panel should accelerate bottom-up search"
        );
    }
    println!("pattern panel makes bottom-up search cheaper at every query size");
}
