//! E13 (extension, §2.5 "Beyond Graphs") — data-driven sketch panels for
//! time series: the data-driven paradigm transplanted to sketch-based
//! series querying. A simulated user sketches queries for structures
//! that exist in the series; the data-driven Shape Panel (mined motifs)
//! is compared against free-hand sketching on modeled formulation time
//! and retrieval quality. Shape: assisted sketching is faster for
//! data-resident shapes and never worse overall.

use bench::{print_table, time_ms, write_json};
use serde::Serialize;
use vqi_timeseries::series::{synthetic_with_motifs, znormalize, SyntheticParams};
use vqi_timeseries::shapes::{select_shapes, ShapeBudget};
use vqi_timeseries::sketch::{match_sketch, sketch_cost, SketchCosts};

#[derive(Serialize)]
struct Row {
    noise: f64,
    panel_coverage: f64,
    panel_diversity: f64,
    freehand_time: f64,
    assisted_time: f64,
    retrieval_hits: usize,
    mining_ms: f64,
}

fn main() {
    let costs = SketchCosts::default();
    let mut rows = Vec::new();
    for noise in [0.05f64, 0.15, 0.30] {
        let params = SyntheticParams {
            len: 2_500,
            motif_occurrences: 6,
            motif_width: 50,
            noise,
            seed: 0xE13,
        };
        let (series, offsets) = synthetic_with_motifs(params);
        let (panel, mining_ms) = time_ms(|| {
            select_shapes(
                &series,
                ShapeBudget {
                    count: 5,
                    width: params.motif_width,
                    epsilon: 3.5,
                },
            )
        });

        // the user wants to query each planted occurrence
        let mut freehand_total = 0.0;
        let mut assisted_total = 0.0;
        let mut hits = 0usize;
        for &o in &offsets {
            let intended = znormalize(series.window(o, params.motif_width).unwrap());
            freehand_total += sketch_cost(&intended, None, &costs);
            assisted_total += sketch_cost(&intended, Some(&panel), &costs);
            // retrieval with the best panel shape
            if let Some(best) = panel.shapes.first() {
                let matches = match_sketch(&series, &best.values, offsets.len());
                hits += matches
                    .iter()
                    .filter(|m| offsets.iter().any(|&p| p.abs_diff(m.offset) <= 5))
                    .count()
                    .min(1);
            }
        }
        let n = offsets.len().max(1) as f64;
        rows.push(Row {
            noise,
            panel_coverage: panel.coverage,
            panel_diversity: panel.diversity,
            freehand_time: freehand_total / n,
            assisted_time: assisted_total / n,
            retrieval_hits: hits,
            mining_ms,
        });
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{:.2}", r.noise),
                format!("{:.3}", r.panel_coverage),
                format!("{:.3}", r.panel_diversity),
                format!("{:.1}", r.freehand_time),
                format!("{:.1}", r.assisted_time),
                r.retrieval_hits.to_string(),
                format!("{:.0}", r.mining_ms),
            ]
        })
        .collect();
    print_table(
        "E13: data-driven sketch panel vs free-hand sketching (per-query time, s)",
        &[
            "noise",
            "coverage",
            "diversity",
            "freehand t",
            "assisted t",
            "hits",
            "mine ms",
        ],
        &table,
    );
    write_json("e13_timeseries", &rows);

    for r in &rows {
        assert!(
            r.assisted_time <= r.freehand_time + 1e-9,
            "noise {}: assisted {} > freehand {}",
            r.noise,
            r.assisted_time,
            r.freehand_time
        );
    }
    println!("assisted sketching never slower; advantage largest at low noise");
}
