//! E1 — query formulation efficiency on a graph collection
//! (reproduces the usability claim of §2.3 for CATAPULT: data-driven
//! VQIs need fewer steps and less time than manual VQIs, with the gap
//! widening as queries grow).

use bench::{print_table, write_json};
use catapult::Catapult;
use serde::Serialize;
use vqi_core::budget::PatternBudget;
use vqi_core::repo::GraphRepository;
use vqi_core::selector::RandomSelector;
use vqi_core::vqi::VisualQueryInterface;
use vqi_datasets::{aids_like, MoleculeParams};
use vqi_sim::cost::ActionCosts;
use vqi_sim::usability::evaluate_interface;
use vqi_sim::workload::{sample_queries, WorkloadParams};

#[derive(Serialize)]
struct Row {
    query_size: usize,
    catapult_steps: f64,
    catapult_time: f64,
    random_steps: f64,
    random_time: f64,
    manual_steps: f64,
    manual_time: f64,
    catapult_errors: f64,
    manual_errors: f64,
}

fn main() {
    let graphs = aids_like(MoleculeParams {
        count: 200,
        seed: 101,
        ..Default::default()
    });
    let repo = GraphRepository::collection(graphs);
    let budget = PatternBudget::new(8, 4, 8);
    let catapult = VisualQueryInterface::data_driven(&repo, &Catapult::default(), &budget);
    let random = VisualQueryInterface::data_driven(&repo, &RandomSelector::new(3), &budget);
    let manual = VisualQueryInterface::manual(
        repo.node_labels().into_iter().collect(),
        repo.edge_labels().into_iter().collect(),
        vec![],
    );
    let costs = ActionCosts::default();

    let mut rows = Vec::new();
    for query_size in [4usize, 6, 8, 10, 12] {
        let queries = sample_queries(
            &repo,
            &WorkloadParams {
                count: 20,
                sizes: vec![query_size],
                seed: 500 + query_size as u64,
            },
        );
        let c = evaluate_interface(&catapult, &queries, &costs);
        let r = evaluate_interface(&random, &queries, &costs);
        let m = evaluate_interface(&manual, &queries, &costs);
        rows.push(Row {
            query_size,
            catapult_steps: c.mean_steps,
            catapult_time: c.mean_time,
            random_steps: r.mean_steps,
            random_time: r.mean_time,
            manual_steps: m.mean_steps,
            manual_time: m.mean_time,
            catapult_errors: c.mean_errors,
            manual_errors: m.mean_errors,
        });
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.query_size.to_string(),
                format!("{:.2}", r.catapult_steps),
                format!("{:.1}", r.catapult_time),
                format!("{:.2}", r.random_steps),
                format!("{:.1}", r.random_time),
                format!("{:.2}", r.manual_steps),
                format!("{:.1}", r.manual_time),
                format!("{:.2}", r.catapult_errors),
                format!("{:.2}", r.manual_errors),
            ]
        })
        .collect();
    print_table(
        "E1: mean formulation steps / modeled time (s) on a 200-compound collection",
        &[
            "|Q|",
            "cat steps",
            "cat t",
            "rnd steps",
            "rnd t",
            "man steps",
            "man t",
            "cat err",
            "man err",
        ],
        &table,
    );
    write_json("e1_formulation_collection", &rows);

    // shape assertions: data-driven <= manual, gap grows with |Q|
    for r in &rows {
        assert!(
            r.catapult_steps <= r.manual_steps,
            "|Q|={}: catapult {} > manual {}",
            r.query_size,
            r.catapult_steps,
            r.manual_steps
        );
    }
    let gap_small = rows[0].manual_steps - rows[0].catapult_steps;
    let gap_large = rows.last().unwrap().manual_steps - rows.last().unwrap().catapult_steps;
    println!("step gap at |Q|=4: {gap_small:.2}, at |Q|=12: {gap_large:.2} (expected to widen)");
}
