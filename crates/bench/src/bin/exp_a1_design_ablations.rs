//! A1 — ablations of the design choices DESIGN.md calls out:
//!
//! 1. **score-weight ablation** (CATAPULT): zeroing the diversity weight
//!    should lower achieved diversity; zeroing the cognitive-load weight
//!    should raise the selected patterns' mean load;
//! 2. **truss threshold sensitivity** (TATTOO): how the `G_T`/`G_O`
//!    split and the selection move with `k`;
//! 3. **walk-budget sensitivity** (CATAPULT): more candidate walks buy
//!    coverage with diminishing returns;
//! 4. **twin-pruning effect** (canonical codes): search-budget
//!    consumption with and without highly symmetric inputs.

use bench::{print_table, time_ms, write_json};
use catapult::candidates::WalkParams;
use catapult::{Catapult, CatapultConfig};
use serde::Serialize;
use tattoo::{Tattoo, TattooConfig};
use vqi_core::budget::PatternBudget;
use vqi_core::repo::GraphRepository;
use vqi_core::score::{evaluate, QualityWeights};
use vqi_core::selector::PatternSelector;
use vqi_datasets::{aids_like, dblp_like, MoleculeParams};
use vqi_graph::canon::canonical_code_budgeted;
use vqi_graph::generate as gen;

#[derive(Serialize)]
struct WeightRow {
    config: &'static str,
    coverage: f64,
    diversity: f64,
    cognitive_load: f64,
}

fn weight_ablation() -> Vec<WeightRow> {
    let repo = GraphRepository::collection(aids_like(MoleculeParams {
        count: 100,
        seed: 71,
        ..Default::default()
    }));
    let budget = PatternBudget::new(6, 4, 8);
    let configs: Vec<(&'static str, QualityWeights)> = vec![
        ("default (0.5/0.5)", QualityWeights::default()),
        (
            "no diversity term",
            QualityWeights {
                diversity: 0.0,
                cognitive: 0.5,
            },
        ),
        (
            "no cognitive term",
            QualityWeights {
                diversity: 0.5,
                cognitive: 0.0,
            },
        ),
        (
            "coverage only",
            QualityWeights {
                diversity: 0.0,
                cognitive: 0.0,
            },
        ),
    ];
    let mut rows = Vec::new();
    for (name, weights) in configs {
        let cat = Catapult::new(CatapultConfig {
            weights,
            ..Default::default()
        });
        let set = cat.select(&repo, &budget);
        let q = evaluate(&set, &repo, QualityWeights::default());
        rows.push(WeightRow {
            config: name,
            coverage: q.coverage,
            diversity: q.diversity,
            cognitive_load: q.cognitive_load,
        });
    }
    rows
}

#[derive(Serialize)]
struct TrussRow {
    k: u32,
    infested_pct: f64,
    coverage: f64,
    diversity: f64,
}

fn truss_ablation() -> Vec<TrussRow> {
    let net = dblp_like(1_000, 72);
    let budget = PatternBudget::new(6, 4, 6);
    let mut rows = Vec::new();
    for k in [3u32, 4, 5] {
        let d = vqi_graph::truss::decompose(&net, k);
        let t = Tattoo::new(TattooConfig {
            truss_k: k,
            ..Default::default()
        });
        let set = t.run(&net, &budget);
        let repo = GraphRepository::network(net.clone());
        let q = evaluate(&set, &repo, QualityWeights::default());
        rows.push(TrussRow {
            k,
            infested_pct: 100.0 * d.infested_edges.len() as f64 / net.edge_count() as f64,
            coverage: q.coverage,
            diversity: q.diversity,
        });
    }
    rows
}

#[derive(Serialize)]
struct WalkRow {
    walks_per_csg: usize,
    coverage: f64,
    select_ms: f64,
}

fn walk_ablation() -> Vec<WalkRow> {
    let repo = GraphRepository::collection(aids_like(MoleculeParams {
        count: 80,
        seed: 73,
        ..Default::default()
    }));
    let budget = PatternBudget::new(6, 4, 8);
    let mut rows = Vec::new();
    for walks in [10usize, 30, 60, 120] {
        let cat = Catapult::new(CatapultConfig {
            walks: WalkParams {
                walks_per_csg: walks,
                ..Default::default()
            },
            ..Default::default()
        });
        let (set, ms) = time_ms(|| cat.select(&repo, &budget));
        let q = evaluate(&set, &repo, QualityWeights::default());
        rows.push(WalkRow {
            walks_per_csg: walks,
            coverage: q.coverage,
            select_ms: ms,
        });
    }
    rows
}

#[derive(Serialize)]
struct CanonRow {
    input: &'static str,
    nodes: usize,
    truncated: bool,
    ms: f64,
}

fn canon_ablation() -> Vec<CanonRow> {
    // symmetric inputs are the worst case for the ordering search; twin
    // pruning keeps them inside tiny budgets
    let inputs: Vec<(&'static str, vqi_graph::Graph)> = vec![
        ("clique-12", gen::clique(12, 0, 0)),
        ("star-20", gen::star(20, 0, 0)),
        ("cycle-16", gen::cycle(16, 0, 0)),
        ("petal(4,3)", gen::petal(4, 3, 0, 0)),
    ];
    let mut rows = Vec::new();
    for (name, g) in inputs {
        let (code, ms) = time_ms(|| canonical_code_budgeted(&g, 200_000));
        rows.push(CanonRow {
            input: name,
            nodes: g.node_count(),
            truncated: code.is_truncated(),
            ms,
        });
    }
    rows
}

fn main() {
    let w = weight_ablation();
    print_table(
        "A1.1: CATAPULT score-weight ablation (achieved quality of selection)",
        &["config", "coverage", "diversity", "cogload"],
        &w.iter()
            .map(|r| {
                vec![
                    r.config.to_string(),
                    format!("{:.3}", r.coverage),
                    format!("{:.3}", r.diversity),
                    format!("{:.3}", r.cognitive_load),
                ]
            })
            .collect::<Vec<_>>(),
    );
    // shape: dropping the diversity term cannot increase diversity
    let default_div = w[0].diversity;
    let no_div = w[1].diversity;
    assert!(
        no_div <= default_div + 0.05,
        "diversity term inactive? {no_div} vs {default_div}"
    );

    let t = truss_ablation();
    print_table(
        "A1.2: TATTOO truss-threshold sensitivity",
        &["k", "G_T edges %", "coverage", "diversity"],
        &t.iter()
            .map(|r| {
                vec![
                    r.k.to_string(),
                    format!("{:.1}%", r.infested_pct),
                    format!("{:.3}", r.coverage),
                    format!("{:.3}", r.diversity),
                ]
            })
            .collect::<Vec<_>>(),
    );
    assert!(
        t.windows(2).all(|p| p[1].infested_pct <= p[0].infested_pct),
        "G_T must shrink as k grows"
    );

    let wk = walk_ablation();
    print_table(
        "A1.3: CATAPULT walk-budget sensitivity",
        &["walks/CSG", "coverage", "ms"],
        &wk.iter()
            .map(|r| {
                vec![
                    r.walks_per_csg.to_string(),
                    format!("{:.3}", r.coverage),
                    format!("{:.0}", r.select_ms),
                ]
            })
            .collect::<Vec<_>>(),
    );

    let c = canon_ablation();
    print_table(
        "A1.4: canonical codes on symmetric inputs (twin pruning active)",
        &["input", "n", "truncated", "ms"],
        &c.iter()
            .map(|r| {
                vec![
                    r.input.to_string(),
                    r.nodes.to_string(),
                    r.truncated.to_string(),
                    format!("{:.2}", r.ms),
                ]
            })
            .collect::<Vec<_>>(),
    );
    assert!(
        c.iter().all(|r| !r.truncated),
        "symmetric inputs must fit the budget thanks to twin pruning"
    );

    write_json("a1_weight_ablation", &w);
    write_json("a1_truss_ablation", &t);
    write_json("a1_walk_ablation", &wk);
    write_json("a1_canon_ablation", &c);
}
