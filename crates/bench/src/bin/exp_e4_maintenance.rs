//! E4 — maintenance efficiency and effectiveness (§2.4): MIDAS batch
//! maintenance vs re-running CATAPULT from scratch, across batch sizes.
//! Shape: MIDAS is several times faster, and the maintained set's
//! quality on the updated repository is ≥ the stale set's.

use bench::{enable_metrics, print_table, timed_ms, write_json, write_metrics_json};
use catapult::Catapult;
use midas::{Midas, MidasConfig};
use serde::Serialize;
use vqi_core::budget::PatternBudget;
use vqi_core::repo::{BatchUpdate, GraphCollection, GraphRepository};
use vqi_core::score::evaluate;
use vqi_datasets::{aids_like, MoleculeParams};

#[derive(Serialize)]
struct Row {
    batch_pct: usize,
    modification: String,
    midas_ms: f64,
    rerun_ms: f64,
    speedup: f64,
    stale_score: f64,
    maintained_score: f64,
    swaps: usize,
}

fn main() {
    enable_metrics();
    let base_count = 120usize;
    let budget = PatternBudget::new(6, 4, 7);
    let mut rows = Vec::new();

    for batch_pct in [5usize, 10, 25, 50] {
        let initial = aids_like(MoleculeParams {
            count: base_count,
            seed: 400,
            ..Default::default()
        });
        let mut m = Midas::bootstrap(
            GraphCollection::new(initial),
            budget,
            MidasConfig::default(),
        );
        let stale = m.patterns.clone();

        // a structurally drifting batch: cliques + stars (ring systems
        // and hub compounds the original repository lacked)
        let n_add = base_count * batch_pct / 100;
        let batch: Vec<vqi_graph::Graph> = (0..n_add)
            .map(|i| {
                if i % 2 == 0 {
                    vqi_graph::generate::clique(4 + i % 2, 3, 0)
                } else {
                    vqi_graph::generate::star(5 + i % 3, 4, 0)
                }
            })
            .collect();

        let (report, midas_ms) = timed_ms(&format!("e4.midas.b{batch_pct}"), || {
            m.apply_update(BatchUpdate::adding(batch))
        });
        let (_, rerun_ms) = timed_ms(&format!("e4.rerun.b{batch_pct}"), || {
            Catapult::default().run_with_state(&m.collection, &budget)
        });

        let repo = GraphRepository::Collection(m.collection.clone());
        let w = Default::default();
        let stale_score = evaluate(&stale, &repo, w).score;
        let maintained_score = evaluate(&m.patterns, &repo, w).score;
        assert!(
            maintained_score >= stale_score - 1e-9,
            "quality guarantee violated at {batch_pct}%"
        );

        rows.push(Row {
            batch_pct,
            modification: format!("{:?}", report.modification),
            midas_ms,
            rerun_ms,
            speedup: rerun_ms / midas_ms.max(1e-9),
            stale_score,
            maintained_score,
            swaps: report.swaps,
        });
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{}%", r.batch_pct),
                r.modification.clone(),
                format!("{:.1}", r.midas_ms),
                format!("{:.1}", r.rerun_ms),
                format!("{:.1}x", r.speedup),
                format!("{:.3}", r.stale_score),
                format!("{:.3}", r.maintained_score),
                r.swaps.to_string(),
            ]
        })
        .collect();
    print_table(
        "E4: MIDAS maintenance vs CATAPULT rerun (120-compound base)",
        &[
            "batch",
            "kind",
            "midas ms",
            "rerun ms",
            "speedup",
            "stale",
            "maintained",
            "swaps",
        ],
        &table,
    );
    write_json("e4_maintenance", &rows);
    write_metrics_json("e4_maintenance");

    let mean_speedup: f64 = rows.iter().map(|r| r.speedup).sum::<f64>() / rows.len() as f64;
    println!("mean speedup: {mean_speedup:.1}x (paper shape: maintenance ≫ rerun)");
}
