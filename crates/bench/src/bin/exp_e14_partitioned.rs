//! E14 (extension, §2.5 "Data-driven VQIs for massive networks") —
//! partitioned map/reduce-style selection vs whole-graph TATTOO.
//!
//! The total candidate-sampling budget is held constant (divided across
//! partitions), so the comparison isolates the architecture: the **map**
//! phase (truss split + extraction per partition) parallelizes across
//! workers, while the **reduce** phase (exact coverage + greedy) stays
//! global. Shape: quality stays near the whole-graph baseline while the
//! map phase shrinks with partition count.

use bench::{
    enable_metrics, print_cache_stats, print_table, timed_ms, write_json, write_metrics_json,
};
use serde::Serialize;
use tattoo::{PartitionedTattoo, Tattoo, TattooConfig};
use vqi_core::budget::PatternBudget;
use vqi_core::repo::GraphRepository;
use vqi_core::score::{evaluate, QualityWeights};
use vqi_datasets::social_like;

#[derive(Serialize)]
struct Row {
    configuration: String,
    parts: usize,
    map_ms: f64,
    reduce_ms: f64,
    total_ms: f64,
    coverage: f64,
    score: f64,
}

fn main() {
    enable_metrics();
    let net = social_like(4_000, 7);
    println!(
        "network: {} nodes, {} edges\n",
        net.node_count(),
        net.edge_count()
    );
    let repo = GraphRepository::network(net.clone());
    let budget = PatternBudget::new(8, 4, 6);
    let w = QualityWeights::default();

    let mut rows = Vec::new();
    let (whole_set, whole_ms) = timed_ms("e14.whole", || Tattoo::default().run(&net, &budget));
    let q = evaluate(&whole_set, &repo, w);
    rows.push(Row {
        configuration: "whole-graph tattoo".into(),
        parts: 1,
        map_ms: f64::NAN,
        reduce_ms: f64::NAN,
        total_ms: whole_ms,
        coverage: q.coverage,
        score: q.score,
    });
    for parts in [2usize, 4, 8] {
        let sel = PartitionedTattoo::new(TattooConfig::default(), parts);
        let (cands, map_ms) = timed_ms(&format!("e14.map.x{parts}"), || {
            sel.map_candidates(&net, &budget)
        });
        let (set, reduce_ms) = timed_ms(&format!("e14.reduce.x{parts}"), || {
            sel.reduce_select(cands, &net, &budget)
        });
        let q = evaluate(&set, &repo, w);
        rows.push(Row {
            configuration: format!("partitioned x{parts}"),
            parts,
            map_ms,
            reduce_ms,
            total_ms: map_ms + reduce_ms,
            coverage: q.coverage,
            score: q.score,
        });
    }

    let fmt = |x: f64| {
        if x.is_nan() {
            "-".to_string()
        } else {
            format!("{x:.0}")
        }
    };
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.configuration.clone(),
                r.parts.to_string(),
                fmt(r.map_ms),
                fmt(r.reduce_ms),
                format!("{:.0}", r.total_ms),
                format!("{:.3}", r.coverage),
                format!("{:.3}", r.score),
            ]
        })
        .collect();
    print_table(
        "E14: partitioned vs whole-graph selection (4000-node network)",
        &[
            "configuration",
            "parts",
            "map ms",
            "reduce ms",
            "total ms",
            "coverage",
            "score",
        ],
        &table,
    );
    write_json("e14_partitioned", &rows);
    print_cache_stats();
    write_metrics_json("e14_partitioned");

    let whole_score = rows[0].score;
    for r in &rows[1..] {
        assert!(
            r.score >= 0.8 * whole_score,
            "{}: quality {:.3} too far below whole-graph {:.3}",
            r.configuration,
            r.score,
            whole_score
        );
    }
    println!("partitioned quality stays within 20% of whole-graph selection");
}
