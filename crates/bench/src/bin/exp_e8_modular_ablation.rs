//! E8 — module-swap ablation of the Tzanikos-style modular architecture
//! (§2.3: "each of these modules can utilize customized solutions").
//! Every combination of {similarity} × {clustering} × {merge} ×
//! {extract} runs on the same collection; quality and runtime per
//! assembly.

use bench::{print_table, time_ms, write_json};
use serde::Serialize;
use vqi_core::budget::PatternBudget;
use vqi_core::repo::GraphRepository;
use vqi_core::score::{evaluate, QualityWeights};
use vqi_datasets::{aids_like, MoleculeParams};
use vqi_mining::similarity::SimilarityMeasure;
use vqi_modular::{
    ClosureMerge, ClusteringStage, ExtractStage, KMedoidsStage, LeaderStage, MergeStage,
    ModularPipeline, SampleExtract, UnionMerge, WalkExtract,
};

#[derive(Serialize)]
struct Row {
    assembly: String,
    patterns: usize,
    coverage: f64,
    diversity: f64,
    score: f64,
    ms: f64,
}

fn sim_by(name: &str) -> Box<dyn SimilarityMeasure> {
    match name {
        "mcs" => Box::new(vqi_mining::similarity::McsSimilarity),
        _ => Box::new(vqi_mining::similarity::EdgeTripleJaccard),
    }
}

fn clu_by(name: &str) -> Box<dyn ClusteringStage> {
    match name {
        "leader" => Box::new(LeaderStage::default()),
        _ => Box::new(KMedoidsStage::default()),
    }
}

fn mrg_by(name: &str) -> Box<dyn MergeStage> {
    match name {
        "union" => Box::new(UnionMerge),
        _ => Box::new(ClosureMerge),
    }
}

fn ext_by(name: &str) -> Box<dyn ExtractStage> {
    match name {
        "sample" => Box::new(SampleExtract::default()),
        _ => Box::new(WalkExtract::default()),
    }
}

fn main() {
    // small molecules: the MCS similarity stage is exponential in graph
    // size, and the ablation needs 16 assemblies × C(n,2) pair distances
    let repo = GraphRepository::collection(aids_like(MoleculeParams {
        count: 60,
        max_rings: 1,
        max_chains: 2,
        max_chain_len: 2,
        seed: 808,
    }));
    let col = repo.as_collection().unwrap();
    let budget = PatternBudget::new(6, 4, 7);

    let mut rows = Vec::new();
    for sim in ["jaccard", "mcs"] {
        for clu in ["k-medoids", "leader"] {
            for mrg in ["closure", "union"] {
                for ext in ["walk", "sample"] {
                    let pipeline = ModularPipeline {
                        similarity: sim_by(sim),
                        clustering: clu_by(clu),
                        merger: mrg_by(mrg),
                        extractor: ext_by(ext),
                        weights: QualityWeights::default(),
                    };
                    let (set, ms) = time_ms(|| pipeline.run(col, &budget));
                    let q = evaluate(&set, &repo, QualityWeights::default());
                    rows.push(Row {
                        assembly: format!("{sim}/{clu}/{mrg}/{ext}"),
                        patterns: set.len(),
                        coverage: q.coverage,
                        diversity: q.diversity,
                        score: q.score,
                        ms,
                    });
                }
            }
        }
    }
    // total_cmp: a NaN score from a degenerate assembly must not panic
    // the report; it sorts deterministically instead
    rows.sort_by(|a, b| b.score.total_cmp(&a.score));

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.assembly.clone(),
                r.patterns.to_string(),
                format!("{:.3}", r.coverage),
                format!("{:.3}", r.diversity),
                format!("{:.3}", r.score),
                format!("{:.0}", r.ms),
            ]
        })
        .collect();
    print_table(
        "E8: modular-pipeline ablation (sorted by score)",
        &["assembly", "k", "coverage", "diversity", "score", "ms"],
        &table,
    );
    write_json("e8_modular_ablation", &rows);

    assert!(
        rows.iter().all(|r| r.patterns > 0),
        "an assembly selected nothing"
    );
    println!(
        "best assembly: {} (score {:.3}); worst: {} (score {:.3})",
        rows.first().unwrap().assembly,
        rows.first().unwrap().score,
        rows.last().unwrap().assembly,
        rows.last().unwrap().score
    );
}
