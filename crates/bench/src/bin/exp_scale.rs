//! Storage-scaling benchmark — CSR backend at 10⁶ / 10⁷ / 10⁸ edges.
//!
//! For each size the synthetic network (uniform Feistel-permuted pairs
//! plus planted 5-cliques, duplicate-free by construction) is streamed
//! straight into the CSR builder — no adjacency-list intermediate —
//! and the large-network kernels run against the packed storage:
//!
//! * **build** — streamed two-pass CSR construction time and the exact
//!   bytes-per-edge of the packed arrays;
//! * **truss** — the k-truss peel over [`GraphStorage`];
//! * **census** — the exact ESU graphlet census (skipped at 10⁸, where
//!   the 4-node enumeration is out of single-run budget);
//! * **tattoo** — sharded TATTOO candidate generation + selection over
//!   CSR shards via the [`ShardExecutor`] harness.
//!
//! At 10⁶ edges — where the heap twin comfortably fits — the bench
//! first asserts the equality contract at thread caps 1, 2, and 4:
//! heap and CSR backends produce bit-identical trussness, census, and
//! TATTOO selections, and the streamed CSR matches the heap-converted
//! one digest-for-digest (including an image save → load round trip).
//!
//! Peak memory is sampled from `/proc/self/status` (`VmHWM`) after each
//! size, giving the peak-RSS ceiling the 100M-edge run stays under.
//!
//! Writes `BENCH_scale.json` at the repository root (hand-rolled JSON
//! so the offline stub toolchain can build and run this too).

use bench::{enable_metrics, print_table, time_ms};
use tattoo::shard::ShardedTattoo;
use tattoo::TattooConfig;
use vqi_core::budget::PatternBudget;
use vqi_graph::generate::{synthetic_network, SyntheticSpec};
use vqi_graph::graphlet::{count_graphlets_par, count_graphlets_storage};
use vqi_graph::par;
use vqi_graph::storage::{CsrGraph, GraphStorage};
use vqi_graph::truss::trussness;
use vqi_observe::mem;

struct SizeRow {
    name: &'static str,
    nodes: usize,
    edges: usize,
    build_ms: f64,
    bytes_per_edge: f64,
    truss_ms: f64,
    census_ms: Option<f64>,
    tattoo_ms: Option<f64>,
    selected: Option<usize>,
    image_save_ms: Option<f64>,
    image_load_ms: Option<f64>,
    peak_rss_kb: u64,
}

fn spec(nodes: usize, uniform_edges: usize, cliques: usize, seed: u64) -> SyntheticSpec {
    SyntheticSpec {
        nodes,
        uniform_edges,
        cliques,
        node_labels: 4,
        edge_labels: 3,
        seed,
    }
}

fn peak_rss_kb() -> u64 {
    mem::record_rss().map(|s| s.peak_rss_kb).unwrap_or(0)
}

fn codes(set: &vqi_core::pattern::PatternSet) -> Vec<vqi_graph::canon::CanonicalCode> {
    set.patterns().iter().map(|p| p.code.clone()).collect()
}

/// The 10⁶-edge size: equality contract (heap vs CSR at caps 1/2/4),
/// image round trip, then timings on the CSR backend.
fn small(rows: &mut Vec<SizeRow>) {
    let sp = spec(500_000, 970_000, 3_000, 0x5CA1E_1);
    let (csr, build_ms) = time_ms(|| CsrGraph::from_synthetic(&sp));
    let edges = csr.edge_count();
    println!(
        "S1: {} nodes, {} edges (heap-twin equality size)",
        csr.node_count(),
        edges
    );

    {
        let heap = synthetic_network(&sp);
        assert_eq!(
            CsrGraph::from_graph(&heap).digest(),
            csr.digest(),
            "streamed CSR must match the heap-converted one"
        );
        let budget = PatternBudget::new(5, 4, 6);
        let sel = ShardedTattoo::new(TattooConfig::default(), 8).with_score_shards(2);
        let mut reference: Option<(Vec<u32>, [u64; 8], Vec<_>)> = None;
        for cap in [1usize, 2, 4] {
            par::set_thread_cap(cap);
            let t_heap = trussness(&heap);
            let t_csr = trussness(&csr);
            let c_heap = count_graphlets_par(&heap).counts.map(f64::to_bits);
            let c_csr = count_graphlets_storage(&csr).counts.map(f64::to_bits);
            let s_heap = codes(&sel.run(&heap, &budget));
            let s_csr = codes(&sel.run(&csr, &budget));
            par::set_thread_cap(0);
            assert_eq!(
                t_heap, t_csr,
                "cap {cap}: trussness differs across backends"
            );
            assert_eq!(c_heap, c_csr, "cap {cap}: census differs across backends");
            assert_eq!(
                s_heap, s_csr,
                "cap {cap}: TATTOO selection differs across backends"
            );
            match &reference {
                None => reference = Some((t_csr, c_csr, s_csr)),
                Some((t1, c1, s1)) => {
                    assert_eq!(t1, &t_csr, "cap {cap} changed the truss result");
                    assert_eq!(c1, &c_csr, "cap {cap} changed the census result");
                    assert_eq!(s1, &s_csr, "cap {cap} changed the selection");
                }
            }
        }
        println!("S1: heap/CSR bit-identical at caps 1, 2, 4 (truss, census, tattoo)");
    }

    let image = std::env::temp_dir().join(format!("vqi_scale_s1_{}.csr", std::process::id()));
    let (saved, image_save_ms) = time_ms(|| csr.save_image(&image));
    saved.expect("save image");
    let (loaded, image_load_ms) = time_ms(|| CsrGraph::load_image(&image));
    let loaded = loaded.expect("load image");
    assert_eq!(
        loaded.digest(),
        csr.digest(),
        "image round trip changed the digest"
    );
    let _ = std::fs::remove_file(&image);

    mem::record_struct_bytes("csr_s1", csr.heap_bytes());
    let (_, truss_ms) = time_ms(|| trussness(&csr));
    let (_, census_ms) = time_ms(|| count_graphlets_storage(&csr));
    let budget = PatternBudget::new(5, 4, 6);
    let sel = ShardedTattoo::new(TattooConfig::default(), 8).with_score_shards(2);
    let (set, tattoo_ms) = time_ms(|| sel.run(&csr, &budget));
    rows.push(SizeRow {
        name: "1e6",
        nodes: csr.node_count(),
        edges,
        build_ms,
        bytes_per_edge: csr.heap_bytes() as f64 / edges as f64,
        truss_ms,
        census_ms: Some(census_ms),
        tattoo_ms: Some(tattoo_ms),
        selected: Some(set.len()),
        image_save_ms: Some(image_save_ms),
        image_load_ms: Some(image_load_ms),
        peak_rss_kb: peak_rss_kb(),
    });
}

/// The 10⁷-edge size: truss + census on the CSR backend only.
fn medium(rows: &mut Vec<SizeRow>) {
    let sp = spec(5_000_000, 9_700_000, 30_000, 0x5CA1E_2);
    let (csr, build_ms) = time_ms(|| CsrGraph::from_synthetic(&sp));
    let edges = csr.edge_count();
    println!("S2: {} nodes, {} edges", csr.node_count(), edges);
    mem::record_struct_bytes("csr_s2", csr.heap_bytes());
    let (_, truss_ms) = time_ms(|| trussness(&csr));
    let (_, census_ms) = time_ms(|| count_graphlets_storage(&csr));
    rows.push(SizeRow {
        name: "1e7",
        nodes: csr.node_count(),
        edges,
        build_ms,
        bytes_per_edge: csr.heap_bytes() as f64 / edges as f64,
        truss_ms,
        census_ms: Some(census_ms),
        tattoo_ms: None,
        selected: None,
        image_save_ms: None,
        image_load_ms: None,
        peak_rss_kb: peak_rss_kb(),
    });
}

/// The 10⁸-edge size: the tentpole run — truss decomposition plus
/// sharded TATTOO selection on a network that never exists as an
/// adjacency list. The exact census is skipped here.
fn large(rows: &mut Vec<SizeRow>) {
    let sp = spec(50_000_000, 97_000_000, 300_000, 0x5CA1E_3);
    let (csr, build_ms) = time_ms(|| CsrGraph::from_synthetic(&sp));
    let edges = csr.edge_count();
    println!(
        "S3: {} nodes, {} edges (streamed build, no adjacency list)",
        csr.node_count(),
        edges
    );
    mem::record_struct_bytes("csr_s3", csr.heap_bytes());
    let (_, truss_ms) = time_ms(|| trussness(&csr));
    println!("S3: truss peel done in {truss_ms:.0} ms");
    println!("S3: census skipped at 1e8 edges (exact ESU out of single-run budget)");
    let budget = PatternBudget::new(5, 4, 6);
    let sel = ShardedTattoo::new(TattooConfig::default(), 64).with_score_shards(4);
    let (set, tattoo_ms) = time_ms(|| sel.run(&csr, &budget));
    println!(
        "S3: sharded TATTOO selected {} patterns in {tattoo_ms:.0} ms",
        set.len()
    );
    rows.push(SizeRow {
        name: "1e8",
        nodes: csr.node_count(),
        edges,
        build_ms,
        bytes_per_edge: csr.heap_bytes() as f64 / edges as f64,
        truss_ms,
        census_ms: None,
        tattoo_ms: Some(tattoo_ms),
        selected: Some(set.len()),
        image_save_ms: None,
        image_load_ms: None,
        peak_rss_kb: peak_rss_kb(),
    });
}

fn main() {
    enable_metrics();
    let mut rows: Vec<SizeRow> = Vec::new();
    small(&mut rows);
    medium(&mut rows);
    // VQI_SCALE_SMALL=1 stops after the equality sizes (CI smoke runs)
    if std::env::var("VQI_SCALE_SMALL").is_err() {
        large(&mut rows);
    }

    let fmt_opt = |v: &Option<f64>| v.map(|x| format!("{x:.1}")).unwrap_or_else(|| "-".into());
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.name.to_string(),
                r.edges.to_string(),
                format!("{:.0}", r.build_ms),
                format!("{:.1}", r.bytes_per_edge),
                format!("{:.1}", r.truss_ms),
                fmt_opt(&r.census_ms),
                fmt_opt(&r.tattoo_ms),
                r.selected
                    .map(|s| s.to_string())
                    .unwrap_or_else(|| "-".into()),
                format!("{}", r.peak_rss_kb / 1024),
            ]
        })
        .collect();
    print_table(
        "CSR storage scaling (bit-identical to heap at 1e6, caps 1/2/4)",
        &[
            "size",
            "edges",
            "build ms",
            "B/edge",
            "truss ms",
            "census ms",
            "tattoo ms",
            "selected",
            "peak MB",
        ],
        &table,
    );

    let jnum = |v: &Option<f64>| {
        v.map(|x| format!("{x:.3}"))
            .unwrap_or_else(|| "null".into())
    };
    let jint = |v: &Option<usize>| v.map(|x| x.to_string()).unwrap_or_else(|| "null".into());
    let sizes_json: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"size\": \"{}\", \"nodes\": {}, \"edges\": {}, \"build_ms\": {:.3}, \
                 \"bytes_per_edge\": {:.2}, \"truss_ms\": {:.3}, \"census_ms\": {}, \
                 \"tattoo_ms\": {}, \"selected\": {}, \"image_save_ms\": {}, \
                 \"image_load_ms\": {}, \"peak_rss_kb\": {}}}",
                r.name,
                r.nodes,
                r.edges,
                r.build_ms,
                r.bytes_per_edge,
                r.truss_ms,
                jnum(&r.census_ms),
                jnum(&r.tattoo_ms),
                jint(&r.selected),
                jnum(&r.image_save_ms),
                jnum(&r.image_load_ms),
                r.peak_rss_kb
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"equality\": {{\"size\": \"1e6\", \"caps\": [1, 2, 4], \
         \"kernels\": [\"truss\", \"census\", \"tattoo\"]}},\n  \"sizes\": [\n{}\n  ]\n}}\n",
        sizes_json.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_scale.json");
    std::fs::write(path, json).expect("write BENCH_scale.json");
    println!("(wrote {path})");
}
