//! RECOVERY — durability cost and crash recovery (DESIGN §13).
//!
//! Three measurements on one molecule repository:
//!
//! 1. **WAL overhead** — wall time of an identical update sequence
//!    without durability, with a buffered WAL, and with a fsync'd WAL,
//!    run as interleaved rounds and summarized by the median of paired
//!    per-round ratios. The buffered ratio is asserted ≤ 1.10: the log
//!    append itself must stay within 10% of the plain update path.
//! 2. **Recovery time vs replay length** — bootstrap with
//!    checkpoints disabled, apply 10 / 50 / 200 batches, then time
//!    `VqiService::recover` (checkpoint load + full WAL replay).
//! 3. **Crash matrix** — re-runs this binary as a sacrificial child
//!    (`VQI_RECOVERY_ROLE=child`) with a crash plan armed at each
//!    injection site, then recovers in the parent and asserts the
//!    collection digest is bit-identical to an uncrashed run over the
//!    same durable prefix.
//!
//! Writes `BENCH_recovery.json` at the repository root. The JSON is
//! hand-rolled so the binary also builds under the offline stub
//! toolchain, whose `serde_json` cannot serialize.

use bench::{print_table, time_ms};
use std::path::{Path, PathBuf};
use vqi_core::repo::{BatchUpdate, GraphCollection};
use vqi_datasets::{aids_like, MoleculeParams};
use vqi_serve::{collection_digest, DurabilityConfig, ServeConfig, VqiService};

const OVERHEAD_UPDATES: u64 = 30;
const OVERHEAD_RUNS: usize = 7;
const REPLAY_LENGTHS: [u64; 3] = [10, 50, 200];
const CRASH_SEEDS: u64 = 4;
const CRASH_SITES: [&str; 4] = [
    "wal.append.mid",
    "wal.append.torn",
    "serve.update.pre_publish",
    "wal.checkpoint.mid",
];

fn molecules(count: usize, seed: u64) -> Vec<vqi_graph::Graph> {
    aids_like(MoleculeParams {
        count,
        seed,
        max_rings: 1,
        max_chains: 2,
        max_chain_len: 2,
    })
}

/// The serving-sized repository the overhead and replay measurements
/// run on: the per-update apply/clone/publish cost must dominate, as
/// it does in a real deployment, for the append-overhead ratio to be
/// meaningful (against a toy collection the fixed ~µs append cost
/// reads as a large percentage of almost nothing).
fn initial(seed: u64) -> GraphCollection {
    GraphCollection::new(molecules(256, seed))
}

fn batch_for(seed: u64, i: u64) -> BatchUpdate {
    BatchUpdate::adding(molecules(1, seed.wrapping_mul(1000) + i))
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("vqi_exp_recovery_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// One timed run of the fixed update sequence; `durable` chooses the
/// plain, buffered-WAL, or fsync'd-WAL service.
fn run_updates(durable: Option<(&Path, bool)>) -> f64 {
    let config = ServeConfig::default();
    let service = match durable {
        None => VqiService::new(initial(9), config),
        Some((dir, fsync)) => VqiService::with_durability(
            initial(9),
            config,
            dir,
            DurabilityConfig {
                checkpoint_every: 0, // isolate append cost from checkpoint cost
                fsync,
                keep_checkpoints: 2,
            },
        )
        .expect("bootstrap"),
    };
    let (_, ms) = time_ms(|| {
        for i in 1..=OVERHEAD_UPDATES {
            service.update(0, batch_for(9, i), None).expect("update");
        }
    });
    ms
}

/// One interleaved overhead round: plain, buffered-WAL, and fsync'd-WAL
/// back to back, so clock-frequency and allocator drift between rounds
/// lands on every mode equally instead of biasing whichever mode ran
/// last (runs are ~3 ms each; consecutive same-mode runs were observed
/// to drift by more than the true append cost).
fn overhead_round(round: usize) -> (f64, f64, f64) {
    let plain = run_updates(None);
    let buffered = {
        let dir = fresh_dir(&format!("buffered_{round}"));
        let ms = run_updates(Some((&dir, false)));
        std::fs::remove_dir_all(&dir).ok();
        ms
    };
    let fsync = {
        let dir = fresh_dir(&format!("fsync_{round}"));
        let ms = run_updates(Some((&dir, true)));
        std::fs::remove_dir_all(&dir).ok();
        ms
    };
    (plain, buffered, fsync)
}

/// Median of a sample — the overhead statistic. A min across unpaired
/// runs lets one lucky outlier on either side swing the ratio by more
/// than the true append cost; the median of *paired* per-round ratios
/// is stable.
fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs in timings"));
    xs[xs.len() / 2]
}

/// Child role of the crash matrix: apply batches with a crash plan
/// armed; either survives all batches or dies at an injected site.
fn crash_child(dir: &Path, seed: u64, site: &str) {
    let service = VqiService::with_durability(
        GraphCollection::new(molecules(4, seed)),
        ServeConfig::default(),
        dir,
        DurabilityConfig {
            checkpoint_every: 2,
            fsync: true,
            keep_checkpoints: 2,
        },
    )
    .expect("child bootstrap");
    vqi_runtime::fault::set_plan(vqi_runtime::fault::FaultPlan {
        seed,
        crash_rate: 0.6,
        ..Default::default()
    });
    vqi_runtime::fault::set_crash_site(Some(site));
    for i in 1..=5u64 {
        service.update(0, batch_for(seed, i), None).expect("update");
    }
    vqi_runtime::fault::reset();
}

struct CrashCell {
    seed: u64,
    site: &'static str,
    crashed: bool,
    final_epoch: u64,
}

fn crash_matrix() -> Vec<CrashCell> {
    let exe = std::env::current_exe().expect("bench binary path");
    let mut cells = Vec::new();
    for seed in 0..CRASH_SEEDS {
        for site in CRASH_SITES {
            let dir = fresh_dir(&format!("crash_{seed}_{}", site.replace('.', "_")));
            std::fs::create_dir_all(&dir).expect("crash dir");
            let out = std::process::Command::new(&exe)
                .env("VQI_RECOVERY_ROLE", "child")
                .env("VQI_CRASH_DIR", &dir)
                .env("VQI_CRASH_SEED", seed.to_string())
                .env("VQI_CRASH_SITE", site)
                .output()
                .expect("spawn crash child");
            #[cfg(unix)]
            let aborted = {
                use std::os::unix::process::ExitStatusExt;
                out.status.signal() == Some(6)
            };
            #[cfg(not(unix))]
            let aborted = String::from_utf8_lossy(&out.stderr).contains("injected crash");
            assert!(
                out.status.success() || aborted,
                "crash child (seed {seed}, site {site}) failed unexpectedly: {}\n{}",
                out.status,
                String::from_utf8_lossy(&out.stderr)
            );
            let (service, report) = VqiService::recover(
                &dir,
                ServeConfig::default(),
                DurabilityConfig {
                    checkpoint_every: 2,
                    fsync: true,
                    keep_checkpoints: 2,
                },
            )
            .expect("recover after crash");
            // the uncrashed reference over the same durable prefix
            let mut reference = GraphCollection::new(molecules(4, seed));
            for i in 1..=report.final_epoch {
                reference.apply(batch_for(seed, i));
            }
            assert_eq!(
                collection_digest(service.store().pin().collection()),
                collection_digest(&reference),
                "seed {seed} site {site}: recovered state diverged"
            );
            cells.push(CrashCell {
                seed,
                site,
                crashed: aborted,
                final_epoch: report.final_epoch,
            });
            std::fs::remove_dir_all(&dir).ok();
        }
    }
    cells
}

fn main() {
    // child role: crash (or survive) inside a sacrificial process
    if std::env::var("VQI_RECOVERY_ROLE").as_deref() == Ok("child") {
        let dir = std::env::var("VQI_CRASH_DIR").expect("VQI_CRASH_DIR");
        let seed: u64 = std::env::var("VQI_CRASH_SEED")
            .expect("VQI_CRASH_SEED")
            .parse()
            .expect("seed");
        let site = std::env::var("VQI_CRASH_SITE").expect("VQI_CRASH_SITE");
        crash_child(Path::new(&dir), seed, &site);
        return;
    }

    // ---- 1. WAL overhead on the update path -----------------------------
    overhead_round(usize::MAX); // warm-up: page cache, allocator, clocks
    let rounds: Vec<(f64, f64, f64)> = (0..OVERHEAD_RUNS).map(overhead_round).collect();
    let plain_ms = median(rounds.iter().map(|r| r.0).collect());
    let buffered_ms = median(rounds.iter().map(|r| r.1).collect());
    let fsync_ms = median(rounds.iter().map(|r| r.2).collect());
    let buffered_ratio = median(rounds.iter().map(|r| r.1 / r.0.max(1e-9)).collect());
    let fsync_ratio = median(rounds.iter().map(|r| r.2 / r.0.max(1e-9)).collect());
    print_table(
        &format!(
            "RECOVERY: WAL overhead ({OVERHEAD_UPDATES} updates, \
             median of {OVERHEAD_RUNS} paired rounds)"
        ),
        &["mode", "wall_ms", "vs plain"],
        &[
            vec!["plain".into(), format!("{plain_ms:.2}"), "1.00x".into()],
            vec![
                "wal (buffered)".into(),
                format!("{buffered_ms:.2}"),
                format!("{buffered_ratio:.2}x"),
            ],
            vec![
                "wal (fsync)".into(),
                format!("{fsync_ms:.2}"),
                format!("{fsync_ratio:.2}x"),
            ],
        ],
    );
    assert!(
        buffered_ratio <= 1.10,
        "WAL append overhead {buffered_ratio:.3}x exceeds the 10% budget"
    );

    // ---- 2. recovery time vs replay length ------------------------------
    let mut replay_rows: Vec<(u64, f64, u64)> = Vec::new();
    for &len in &REPLAY_LENGTHS {
        let dir = fresh_dir(&format!("replay_{len}"));
        let durability = DurabilityConfig {
            checkpoint_every: 0, // bootstrap checkpoint only: replay everything
            fsync: false,
            keep_checkpoints: 2,
        };
        let service = VqiService::with_durability(
            initial(3),
            ServeConfig::default(),
            &dir,
            durability.clone(),
        )
        .expect("bootstrap");
        for i in 1..=len {
            service.update(0, batch_for(3, i), None).expect("update");
        }
        let want = collection_digest(service.store().pin().collection());
        drop(service);
        let ((recovered, report), ms) = time_ms(|| {
            VqiService::recover(&dir, ServeConfig::default(), durability).expect("recover")
        });
        assert_eq!(report.final_epoch, len);
        assert_eq!(report.replayed, len);
        assert_eq!(
            collection_digest(recovered.store().pin().collection()),
            want,
            "replay of {len} records diverged"
        );
        replay_rows.push((len, ms, report.replayed));
        std::fs::remove_dir_all(&dir).ok();
    }
    print_table(
        "RECOVERY: recovery time vs WAL replay length",
        &["records", "recover_ms", "replayed"],
        &replay_rows
            .iter()
            .map(|(n, ms, r)| vec![n.to_string(), format!("{ms:.2}"), r.to_string()])
            .collect::<Vec<_>>(),
    );

    // ---- 3. crash matrix -------------------------------------------------
    let cells = crash_matrix();
    let crashed = cells.iter().filter(|c| c.crashed).count();
    assert!(
        crashed > 0,
        "no crash point fired across the matrix — the harness is not injecting"
    );
    print_table(
        "RECOVERY: crash matrix (digest equality asserted per cell)",
        &["seed", "site", "crashed", "final_epoch"],
        &cells
            .iter()
            .map(|c| {
                vec![
                    c.seed.to_string(),
                    c.site.to_string(),
                    c.crashed.to_string(),
                    c.final_epoch.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!(
        "crash matrix: {crashed}/{} cells crashed and recovered bit-identical",
        cells.len()
    );

    // ---- JSON -----------------------------------------------------------
    let replay_json: Vec<String> = replay_rows
        .iter()
        .map(|(n, ms, r)| {
            format!("    {{\"records\": {n}, \"recover_ms\": {ms:.3}, \"replayed\": {r}}}")
        })
        .collect();
    let matrix_json: Vec<String> = cells
        .iter()
        .map(|c| {
            format!(
                "    {{\"seed\": {}, \"site\": \"{}\", \"crashed\": {}, \"final_epoch\": {}}}",
                c.seed, c.site, c.crashed, c.final_epoch
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"overhead\": {{\"updates\": {OVERHEAD_UPDATES}, \"plain_ms\": {plain_ms:.3}, \
         \"buffered_ms\": {buffered_ms:.3}, \"fsync_ms\": {fsync_ms:.3}, \
         \"buffered_ratio\": {buffered_ratio:.4}, \"fsync_ratio\": {fsync_ratio:.4}, \
         \"budget_ratio\": 1.10}},\n  \"recovery_vs_length\": [\n{}\n  ],\n  \
         \"crash_matrix\": [\n{}\n  ],\n  \"crash_cells_fired\": {crashed}\n}}\n",
        replay_json.join(",\n"),
        matrix_json.join(",\n"),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_recovery.json");
    std::fs::write(path, json).expect("write BENCH_recovery.json");
    println!("(wrote {path})");
}
