//! E11 (extension, §2.5 "data-driven VQI maintenance for large
//! networks") — the open problem, measured: localized TATTOO maintenance
//! vs re-running TATTOO from scratch as the network evolves through edge
//! batches. Shape: maintenance is faster than reruns and the maintained
//! set never scores worse than the stale one.

use bench::{print_table, time_ms, write_json};
use serde::Serialize;
use tattoo::maintain::{EdgeBatch, MaintainConfig, NetworkMaintainer};
use tattoo::Tattoo;
use vqi_core::budget::PatternBudget;
use vqi_datasets::dblp_like;

#[derive(Serialize)]
struct Row {
    batch: usize,
    churn_pct: f64,
    kind: String,
    maintain_ms: f64,
    rerun_ms: f64,
    speedup: f64,
    swaps: usize,
    score_after: f64,
}

/// A batch that appends hubs and wires random leaf cycles (structural
/// drift), sized to the requested churn.
fn drift_batch(m: &NetworkMaintainer, target_edges: usize, label: u32) -> EdgeBatch {
    let mut batch = EdgeBatch::default();
    let base = m.network.node_count() as u32;
    let mut next = base;
    let mut edges = 0usize;
    while edges < target_edges {
        // one star of 6 leaves plus a closing cycle among the leaves
        let hub = next;
        batch.node_additions.push(label);
        next += 1;
        let mut leaves = Vec::new();
        for _ in 0..6 {
            batch.node_additions.push(label);
            leaves.push(next);
            next += 1;
        }
        for &l in &leaves {
            batch.edge_additions.push((hub, l, 0));
            edges += 1;
        }
        for w in leaves.windows(2) {
            batch.edge_additions.push((w[0], w[1], 0));
            edges += 1;
        }
    }
    batch
}

fn main() {
    let net = dblp_like(1_200, 99);
    let budget = PatternBudget::new(6, 4, 6);
    let initial = Tattoo::default().run(&net, &budget);
    let mut maintainer = NetworkMaintainer::new(net, initial, budget, MaintainConfig::default());

    let mut rows = Vec::new();
    for (batch_no, churn_target) in [0.01f64, 0.05, 0.10, 0.05].iter().enumerate() {
        let target_edges = (maintainer.network.edge_count() as f64 * churn_target) as usize;
        let batch = drift_batch(&maintainer, target_edges.max(1), 20 + batch_no as u32);
        let pre_score = maintainer.score();
        let (report, maintain_ms) = time_ms(|| maintainer.apply_batch(batch));
        let post_score = maintainer.score();
        assert!(
            post_score >= pre_score - 0.25,
            "score cratered: {pre_score:.3} -> {post_score:.3}"
        );

        let (_, rerun_ms) = time_ms(|| Tattoo::default().run(&maintainer.network, &budget));

        rows.push(Row {
            batch: batch_no,
            churn_pct: 100.0 * report.churn,
            kind: format!("{:?}", report.modification),
            maintain_ms,
            rerun_ms,
            speedup: rerun_ms / maintain_ms.max(1e-9),
            swaps: report.swaps,
            score_after: post_score,
        });
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.batch.to_string(),
                format!("{:.1}%", r.churn_pct),
                r.kind.clone(),
                format!("{:.0}", r.maintain_ms),
                format!("{:.0}", r.rerun_ms),
                format!("{:.1}x", r.speedup),
                r.swaps.to_string(),
                format!("{:.3}", r.score_after),
            ]
        })
        .collect();
    print_table(
        "E11: network pattern maintenance vs TATTOO rerun (1200-node base)",
        &[
            "batch",
            "churn",
            "kind",
            "maintain ms",
            "rerun ms",
            "speedup",
            "swaps",
            "score",
        ],
        &table,
    );
    write_json("e11_network_maintenance", &rows);

    let mean: f64 = rows.iter().map(|r| r.speedup).sum::<f64>() / rows.len() as f64;
    println!("mean speedup over rerun: {mean:.1}x");
}
