//! End-to-end pipeline benchmark under the deterministic parallel
//! substrate.
//!
//! Two layers of evidence, both equality-asserted before any timing is
//! reported:
//!
//! 1. **Kernel stages** — the two substrate kernels this refactor
//!    rewrote, timed as shipped-baseline vs optimized path on a dense
//!    scale-free network:
//!    * truss peel: [`trussness_baseline`] (linear `edge_between` scans
//!      per removal) vs [`trussness`] (precomputed per-edge triangle
//!      lists + parallel support counting) — trussness vectors asserted
//!      bit-identical;
//!    * graphlet census: [`count_graphlets`] (generic ESU recursion with
//!      per-branch extension-set clones) vs [`count_graphlets_par`]
//!      (arena-backed ESU with leaf short-circuit, fanned over roots) —
//!      counts asserted bit-identical.
//! 2. **Pipelines** — CATAPULT, TATTOO, MIDAS, and the modular pipeline
//!    run end-to-end with the thread cap pinned to 1 and again at all
//!    available cores; each pipeline's selected pattern set (canonical
//!    codes) is asserted identical across the two runs. A warm-up pass
//!    runs first so both measured runs see the same kernel-cache state.
//!
//! Writes `BENCH_pipelines.json` at the repository root. The JSON is
//! hand-rolled (as in `exp_kernels`) so the binary also builds under the
//! offline stub toolchain, whose `serde_json` cannot serialize.

use bench::{enable_metrics, print_table, time_ms};
use catapult::pipeline::Catapult;
use midas::{Midas, MidasConfig, Modification};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use tattoo::pipeline::Tattoo;
use vqi_core::budget::PatternBudget;
use vqi_core::pattern::PatternSet;
use vqi_core::repo::{BatchUpdate, GraphCollection};
use vqi_graph::canon::CanonicalCode;
use vqi_graph::generate::{barabasi_albert, chain, clique, cycle, star};
use vqi_graph::graphlet::{count_graphlets, count_graphlets_par};
use vqi_graph::par;
use vqi_graph::truss::{trussness, trussness_baseline};
use vqi_graph::Graph;
use vqi_modular::pipeline::ModularPipeline;

/// Sorted canonical codes of a pattern set — the comparison key for the
/// cross-thread-count equality asserts.
fn selection_codes(set: &PatternSet) -> Vec<CanonicalCode> {
    let mut codes: Vec<CanonicalCode> = set.patterns().iter().map(|p| p.code.clone()).collect();
    codes.sort();
    codes
}

/// Times `run` with the thread cap pinned to 1, then at all available
/// cores, asserting both selections are identical. Returns
/// `(ms_1thread, ms_all)`.
fn pipeline_times(name: &str, run: impl Fn() -> PatternSet) -> (f64, f64) {
    // warm-up: fills the kernel caches so the two measured runs start
    // from the same cache state
    run();
    par::set_thread_cap(1);
    let (one, one_ms) = time_ms(&run);
    par::set_thread_cap(0);
    let (all, all_ms) = time_ms(&run);
    assert_eq!(
        selection_codes(&one),
        selection_codes(&all),
        "{name}: selection differs between 1 thread and {} threads",
        par::num_threads()
    );
    assert!(!one.is_empty(), "{name}: selected nothing");
    (one_ms, all_ms)
}

fn section_truss() -> (f64, f64) {
    // dense scale-free network: hubs make the O(degree) edge_between
    // scans of the baseline peel expensive
    let mut rng = SmallRng::seed_from_u64(41);
    let net = barabasi_albert(500, 25, 1, &mut rng);
    let reps = 5;
    // warm-up both paths
    let warm_base = trussness_baseline(&net);
    let warm_new = trussness(&net);
    assert_eq!(warm_base, warm_new, "triangle-list peel diverged");
    let (base, base_ms) = time_ms(|| {
        let mut last = Vec::new();
        for _ in 0..reps {
            last = trussness_baseline(&net);
        }
        last
    });
    let (new, new_ms) = time_ms(|| {
        let mut last = Vec::new();
        for _ in 0..reps {
            last = trussness(&net);
        }
        last
    });
    assert_eq!(base, new, "triangle-list peel diverged from baseline");
    (base_ms, new_ms)
}

fn section_graphlet() -> (f64, f64) {
    // moderately dense graph: the generic ESU recursion clones an
    // extension set per branch, which the arena enumerator avoids
    let mut rng = SmallRng::seed_from_u64(43);
    let g = barabasi_albert(220, 10, 1, &mut rng);
    let warm_base = count_graphlets(&g);
    let warm_new = count_graphlets_par(&g);
    assert_eq!(
        warm_base.counts, warm_new.counts,
        "graphlet counts diverged"
    );
    let (base, base_ms) = time_ms(|| count_graphlets(&g));
    let (new, new_ms) = time_ms(|| count_graphlets_par(&g));
    assert_eq!(
        base.counts, new.counts,
        "parallel graphlet census diverged from reference"
    );
    (base_ms, new_ms)
}

fn collection_graphs() -> Vec<Graph> {
    let mut graphs = Vec::new();
    for i in 0..6 {
        graphs.push(chain(5 + i % 3, 1, 0));
        graphs.push(cycle(5 + i % 2, 2, 0));
        graphs.push(star(4 + i % 3, 3, 0));
    }
    graphs
}

fn main() {
    enable_metrics();

    let (truss_base, truss_new) = section_truss();
    let (glet_base, glet_new) = section_graphlet();

    let budget = PatternBudget::new(5, 4, 6);
    let (cat_one, cat_all) = pipeline_times("catapult", || {
        let col = GraphCollection::new(collection_graphs());
        let (set, _) = Catapult::default().run_with_state(&col, &budget);
        set
    });
    let mut rng = SmallRng::seed_from_u64(47);
    let net = barabasi_albert(300, 3, 1, &mut rng);
    let (tat_one, tat_all) = pipeline_times("tattoo", || Tattoo::default().run(&net, &budget));
    let (mid_one, mid_all) = pipeline_times("midas", || {
        let mut m = Midas::bootstrap(
            GraphCollection::new(collection_graphs()),
            budget,
            MidasConfig::default(),
        );
        let mut batch = Vec::new();
        for _ in 0..8 {
            batch.push(clique(5, 3, 0));
            batch.push(star(6, 4, 0));
        }
        let report = m.apply_update(BatchUpdate::adding(batch));
        assert_eq!(report.modification, Modification::Major);
        m.patterns
    });
    let (mod_one, mod_all) = pipeline_times("modular", || {
        let col = GraphCollection::new(collection_graphs());
        ModularPipeline::standard().run(&col, &budget)
    });
    let threads = par::num_threads();

    // --- trace-journal overhead: the same workload under three
    // observability modes, selections asserted identical. The ratios
    // land in BENCH_pipelines.json so the ≤2% (journal disabled) and
    // ≤5% (journal enabled) budgets are tracked across PRs; they are
    // recorded, not asserted, because ms-scale wall times are noisy.
    let journal_workload = || {
        let mut last = None;
        for _ in 0..3 {
            last = Some(Tattoo::default().run(&net, &budget));
        }
        last.expect("workload ran")
    };
    journal_workload(); // warm-up
    vqi_observe::set_enabled(false);
    let (off_set, off_ms) = time_ms(&journal_workload);
    vqi_observe::set_enabled(true);
    let (jdis_set, journal_off_ms) = time_ms(&journal_workload);
    vqi_observe::set_journal_enabled(true);
    vqi_observe::journal_reset();
    let (jon_set, journal_on_ms) = time_ms(&journal_workload);
    let trace_events = vqi_observe::journal_events();
    vqi_observe::set_journal_enabled(false);
    assert_eq!(
        selection_codes(&off_set),
        selection_codes(&jdis_set),
        "metrics recording changed the selection"
    );
    assert_eq!(
        selection_codes(&off_set),
        selection_codes(&jon_set),
        "journal recording changed the selection"
    );
    let overhead_disabled = journal_off_ms / off_ms.max(1e-9);
    let overhead_enabled = journal_on_ms / journal_off_ms.max(1e-9);

    // trace artifacts for one exemplar (three-run) tattoo workload:
    // a Chrome trace_event file and flamegraph collapsed stacks
    let chrome = vqi_observe::chrome_trace(&trace_events);
    let stats = vqi_observe::validate_chrome_trace(&chrome).expect("emitted trace must validate");
    assert!(stats.spans > 0, "trace must contain spans");
    let dir = bench::experiments_dir();
    std::fs::write(dir.join("trace_pipelines.json"), chrome).expect("write chrome trace");
    std::fs::write(
        dir.join("trace_pipelines.folded"),
        vqi_observe::folded_stacks(&trace_events),
    )
    .expect("write folded stacks");
    println!(
        "(wrote {} and trace_pipelines.folded: {} spans, {} instants)",
        dir.join("trace_pipelines.json").display(),
        stats.spans,
        stats.instants
    );

    let kernel_rows = vec![
        vec![
            "truss (peel)".to_string(),
            format!("{truss_base:.1}"),
            format!("{truss_new:.1}"),
            format!("{:.1}x", truss_base / truss_new.max(1e-9)),
        ],
        vec![
            "graphlet (census)".to_string(),
            format!("{glet_base:.1}"),
            format!("{glet_new:.1}"),
            format!("{:.1}x", glet_base / glet_new.max(1e-9)),
        ],
    ];
    print_table(
        "Kernel stages: baseline vs optimized (answer-identical)",
        &["stage", "baseline ms", "optimized ms", "speedup"],
        &kernel_rows,
    );

    let pipe_rows = vec![
        vec![
            "catapult".to_string(),
            format!("{cat_one:.1}"),
            format!("{cat_all:.1}"),
        ],
        vec![
            "tattoo".to_string(),
            format!("{tat_one:.1}"),
            format!("{tat_all:.1}"),
        ],
        vec![
            "midas".to_string(),
            format!("{mid_one:.1}"),
            format!("{mid_all:.1}"),
        ],
        vec![
            "modular".to_string(),
            format!("{mod_one:.1}"),
            format!("{mod_all:.1}"),
        ],
    ];
    print_table(
        &format!("Pipelines end-to-end: 1 thread vs {threads} (identical selections)"),
        &["pipeline", "1 thread ms", "all cores ms"],
        &pipe_rows,
    );

    let journal_rows = vec![
        vec![
            "observability off".to_string(),
            format!("{off_ms:.1}"),
            "1.000".to_string(),
        ],
        vec![
            "metrics on, journal off".to_string(),
            format!("{journal_off_ms:.1}"),
            format!("{overhead_disabled:.3}"),
        ],
        vec![
            "metrics + journal on".to_string(),
            format!("{journal_on_ms:.1}"),
            format!("{overhead_enabled:.3}"),
        ],
    ];
    print_table(
        "Trace-journal overhead (tattoo x3; budgets: <=1.02 disabled, <=1.05 enabled)",
        &["mode", "ms", "ratio vs previous row"],
        &journal_rows,
    );

    let snapshot = vqi_observe::snapshot();
    let mut kernel_counters: Vec<(String, u64)> = snapshot
        .counters
        .iter()
        .filter(|(name, _)| name.starts_with("kernel."))
        .map(|(name, &v)| (name.clone(), v))
        .collect();
    kernel_counters.sort();
    for (name, v) in &kernel_counters {
        println!("  {name} = {v}");
    }

    // hand-rolled JSON so the offline stub toolchain can build this too
    let counters_json: Vec<String> = kernel_counters
        .iter()
        .map(|(name, v)| format!("    \"{name}\": {v}"))
        .collect();
    let json = format!(
        "{{\n  \"threads\": {threads},\n  \"kernels\": {{\n    \"truss\": {{\"baseline_ms\": \
         {truss_base:.3}, \"optimized_ms\": {truss_new:.3}, \"speedup\": {:.3}}},\n    \
         \"graphlet\": {{\"baseline_ms\": {glet_base:.3}, \"optimized_ms\": {glet_new:.3}, \
         \"speedup\": {:.3}}}\n  }},\n  \"pipelines\": {{\n    \"catapult\": {{\"ms_1thread\": \
         {cat_one:.3}, \"ms_all_cores\": {cat_all:.3}, \"identical_selection\": true}},\n    \
         \"tattoo\": {{\"ms_1thread\": {tat_one:.3}, \"ms_all_cores\": {tat_all:.3}, \
         \"identical_selection\": true}},\n    \"midas\": {{\"ms_1thread\": {mid_one:.3}, \
         \"ms_all_cores\": {mid_all:.3}, \"identical_selection\": true}},\n    \"modular\": \
         {{\"ms_1thread\": {mod_one:.3}, \"ms_all_cores\": {mod_all:.3}, \
         \"identical_selection\": true}}\n  }},\n  \"journal\": {{\n    \"off_ms\": {off_ms:.3}, \
         \"journal_off_ms\": {journal_off_ms:.3}, \"journal_on_ms\": {journal_on_ms:.3},\n    \
         \"overhead_disabled\": {overhead_disabled:.4}, \"overhead_enabled\": \
         {overhead_enabled:.4},\n    \"budget_disabled\": 1.02, \"budget_enabled\": 1.05\n  \
         }},\n  \"kernel_counters\": {{\n{}\n  }}\n}}\n",
        truss_base / truss_new.max(1e-9),
        glet_base / glet_new.max(1e-9),
        counters_json.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pipelines.json");
    std::fs::write(path, json).expect("write BENCH_pipelines.json");
    println!("(wrote {path})");
}
