//! E7 — Berlyne's inverted-U (§2.1, §2.5): pleasantness of pattern
//! drawings peaks at moderate visual complexity. We sweep pattern
//! size/density, lay each pattern out, compute visual complexity and the
//! Berlyne pleasantness, and check the curve rises then falls.

use bench::{print_table, write_json};
use serde::Serialize;
use vqi_core::aesthetics::{berlyne_pleasantness, visual_complexity};
use vqi_core::layout::{force_directed, LayoutParams};
use vqi_graph::generate as gen;
use vqi_graph::Graph;

#[derive(Serialize)]
struct Row {
    stimulus: String,
    nodes: usize,
    edges: usize,
    crossings: usize,
    complexity: f64,
    pleasantness: f64,
}

fn main() {
    // a complexity ladder from trivial to hairball
    let stimuli: Vec<(String, Graph)> = vec![
        ("edge".into(), gen::chain(2, 0, 0)),
        ("2-path".into(), gen::chain(3, 0, 0)),
        ("triangle".into(), gen::cycle(3, 0, 0)),
        ("4-star".into(), gen::star(4, 0, 0)),
        ("5-cycle".into(), gen::cycle(5, 0, 0)),
        ("petal(3,2)".into(), gen::petal(3, 2, 0, 0)),
        ("flower(3,4)".into(), gen::flower(3, 4, 0, 0)),
        ("K5".into(), gen::clique(5, 0, 0)),
        ("K7".into(), gen::clique(7, 0, 0)),
        ("K9".into(), gen::clique(9, 0, 0)),
    ];

    // Berlyne optimum: tuned to a "moderate" pattern (a 5-cycle)
    let moderate = gen::cycle(5, 0, 0);
    let layout = force_directed(&moderate, LayoutParams::default());
    let optimum = visual_complexity(&moderate, &layout).complexity;
    let sigma = 1.0;

    let mut rows = Vec::new();
    for (name, g) in &stimuli {
        let layout = force_directed(g, LayoutParams::default());
        let vc = visual_complexity(g, &layout);
        rows.push(Row {
            stimulus: name.clone(),
            nodes: g.node_count(),
            edges: g.edge_count(),
            crossings: vc.crossings,
            complexity: vc.complexity,
            pleasantness: berlyne_pleasantness(vc.complexity, optimum, sigma),
        });
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.stimulus.clone(),
                r.nodes.to_string(),
                r.edges.to_string(),
                r.crossings.to_string(),
                format!("{:.2}", r.complexity),
                format!("{:.3}", r.pleasantness),
            ]
        })
        .collect();
    print_table(
        "E7: visual complexity vs Berlyne pleasantness (optimum at 5-cycle)",
        &[
            "stimulus",
            "n",
            "m",
            "crossings",
            "complexity",
            "pleasantness",
        ],
        &table,
    );
    write_json("e7_aesthetics", &rows);

    // inverted-U shape: the peak is interior, ends are below it
    let peak = rows.iter().map(|r| r.pleasantness).fold(f64::MIN, f64::max);
    let first = rows.first().unwrap().pleasantness;
    let last = rows.last().unwrap().pleasantness;
    assert!(peak > first && peak > last, "curve is not inverted-U");
    println!("inverted-U confirmed: ends {first:.3} / {last:.3}, peak {peak:.3}");
}
