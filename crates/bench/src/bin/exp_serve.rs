//! SERVE — the multi-tenant service under mixed load (DESIGN §10).
//!
//! Three measurements on one molecule repository:
//!
//! 1. **Mixed sessions at several concurrency levels** — every session
//!    interleaves `select` and `query` while session 0 applies update
//!    batches; p50/p99 latency per endpoint and the pattern-cache hit
//!    rate at 1 / 2 / 4 / 8 sessions.
//! 2. **Snapshot-isolation race** — readers race the updater at kernel
//!    thread caps 1 / 2 / 4 with every completed selection re-derived
//!    from scratch on its pinned snapshot and asserted bit-identical.
//! 3. **Cache economics** — cold vs warm selection latency on a static
//!    dataset.
//!
//! Writes `BENCH_serve.json` at the repository root. The JSON is
//! hand-rolled so the binary also builds under the offline stub
//! toolchain, whose `serde_json` cannot serialize.

use bench::{enable_metrics, print_table, time_ms};
use vqi_core::budget::PatternBudget;
use vqi_core::repo::{BatchUpdate, GraphCollection, GraphRepository};
use vqi_datasets::{aids_like, MoleculeParams};
use vqi_serve::{
    run_load, LoadParams, LoadReport, MaintenanceMode, SelectorKind, ServeConfig, VqiService,
};
use vqi_sim::workload::{sample_queries, WorkloadParams};

const SESSIONS: [usize; 4] = [1, 2, 4, 8];
const REQUESTS_PER_SESSION: usize = 12;

fn molecules(count: usize, seed: u64) -> Vec<vqi_graph::Graph> {
    aids_like(MoleculeParams {
        count,
        seed,
        max_rings: 1,
        max_chains: 2,
        max_chain_len: 2,
    })
}

fn service(maintenance: MaintenanceMode) -> VqiService {
    VqiService::new(
        GraphCollection::new(molecules(24, 5)),
        ServeConfig {
            cache_capacity: 16,
            maintenance,
            ..Default::default()
        },
    )
}

fn load_params(sessions: usize, queries: Vec<vqi_graph::Graph>) -> LoadParams {
    LoadParams {
        sessions,
        requests_per_session: REQUESTS_PER_SESSION,
        update_every: 4, // session 0: every 4th request is a batch
        selector: SelectorKind::Catapult,
        select_budget: PatternBudget::new(4, 3, 6),
        queries,
        batches: update_batches(),
        seed: 0xC0FFEE,
        ..Default::default()
    }
}

fn update_batches() -> Vec<BatchUpdate> {
    let extra = molecules(12, 77);
    (0..4)
        .map(|i| BatchUpdate {
            additions: vec![extra[3 * i].clone(), extra[3 * i + 1].clone()],
            removals: vec![i],
        })
        .collect()
}

struct ConcurrencyRow {
    sessions: usize,
    report: LoadReport,
    wall_ms: f64,
}

fn main() {
    enable_metrics();
    let queries = sample_queries(
        &GraphRepository::Collection(GraphCollection::new(molecules(24, 5))),
        &WorkloadParams {
            count: 10,
            sizes: vec![3, 4],
            seed: 0x4031,
        },
    );
    assert!(!queries.is_empty(), "workload sampling produced no queries");

    // ---- 1. mixed load at several concurrency levels -------------------
    let mut rows: Vec<ConcurrencyRow> = Vec::new();
    for &sessions in &SESSIONS {
        let svc = service(MaintenanceMode::ApplyOnly);
        let params = load_params(sessions, queries.clone());
        let (report, wall_ms) = time_ms(|| run_load(&svc, &params));
        assert!(
            report.total_requests() > 0,
            "{sessions} sessions answered nothing"
        );
        rows.push(ConcurrencyRow {
            sessions,
            report,
            wall_ms,
        });
    }
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.sessions.to_string(),
                r.report.total_requests().to_string(),
                r.report.select.p50_us().to_string(),
                r.report.select.p99_us().to_string(),
                r.report.query.p50_us().to_string(),
                r.report.query.p99_us().to_string(),
                r.report.update.p50_us().to_string(),
                format!("{:.2}", r.report.cache_hit_rate()),
                r.report.final_epoch.to_string(),
                format!("{:.0}", r.wall_ms),
            ]
        })
        .collect();
    print_table(
        "SERVE: mixed select/query/update sessions",
        &[
            "sessions",
            "reqs",
            "sel_p50us",
            "sel_p99us",
            "qry_p50us",
            "qry_p99us",
            "upd_p50us",
            "hit_rate",
            "epoch",
            "wall_ms",
        ],
        &table,
    );

    // ---- 2. snapshot-isolation race at thread caps 1/2/4 ----------------
    let mut race_rows: Vec<(usize, usize, u64)> = Vec::new();
    for cap in [1usize, 2, 4] {
        vqi_graph::par::set_thread_cap(cap);
        let svc = service(MaintenanceMode::ApplyOnly);
        let mut params = load_params(4, queries.clone());
        params.requests_per_session = 8;
        params.verify_isolation = true;
        let report = run_load(&svc, &params);
        assert!(
            report.isolation_checks > 0,
            "cap {cap}: no selection was verified"
        );
        assert!(
            report.final_epoch >= 1,
            "cap {cap}: updater never published"
        );
        race_rows.push((cap, report.isolation_checks, report.final_epoch));
    }
    vqi_graph::par::set_thread_cap(0);
    print_table(
        "SERVE: snapshot-isolation race (equality asserts passed)",
        &["thread_cap", "checks", "final_epoch"],
        &race_rows
            .iter()
            .map(|(c, n, e)| vec![c.to_string(), n.to_string(), e.to_string()])
            .collect::<Vec<_>>(),
    );

    // ---- 3. cache economics: cold vs warm selection ---------------------
    let svc = service(MaintenanceMode::ApplyOnly);
    let budget = PatternBudget::new(4, 3, 6);
    let (cold, cold_ms) = time_ms(|| {
        svc.select(1, &SelectorKind::Catapult, &budget, None)
            .expect("cold select")
    });
    let (warm, warm_ms) = time_ms(|| {
        svc.select(2, &SelectorKind::Catapult, &budget, None)
            .expect("warm select")
    });
    assert!(!cold.cached && warm.cached, "warmup must hit");
    println!(
        "cache: cold {cold_ms:.2} ms -> warm {warm_ms:.3} ms ({}x)",
        if warm_ms > 0.0 {
            format!("{:.0}", cold_ms / warm_ms.max(0.001))
        } else {
            "inf".into()
        }
    );

    // ---- JSON -----------------------------------------------------------
    let levels_json: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"sessions\": {}, \"requests\": {}, \"select_p50_us\": {}, \
                 \"select_p99_us\": {}, \"query_p50_us\": {}, \"query_p99_us\": {}, \
                 \"update_p50_us\": {}, \"update_p99_us\": {}, \"cache_hit_rate\": {:.4}, \
                 \"rejected\": {}, \"final_epoch\": {}, \"wall_ms\": {:.1}}}",
                r.sessions,
                r.report.total_requests(),
                r.report.select.p50_us(),
                r.report.select.p99_us(),
                r.report.query.p50_us(),
                r.report.query.p99_us(),
                r.report.update.p50_us(),
                r.report.update.p99_us(),
                r.report.cache_hit_rate(),
                r.report.select.rejected + r.report.query.rejected + r.report.update.rejected,
                r.report.final_epoch,
                r.wall_ms,
            )
        })
        .collect();
    let race_json: Vec<String> = race_rows
        .iter()
        .map(|(c, n, e)| {
            format!("    {{\"thread_cap\": {c}, \"isolation_checks\": {n}, \"final_epoch\": {e}}}")
        })
        .collect();
    let json = format!(
        "{{\n  \"concurrency_levels\": [\n{}\n  ],\n  \"isolation_race\": [\n{}\n  ],\n  \
         \"cache\": {{\"cold_ms\": {cold_ms:.3}, \"warm_ms\": {warm_ms:.3}}}\n}}\n",
        levels_json.join(",\n"),
        race_json.join(",\n"),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    std::fs::write(path, json).expect("write BENCH_serve.json");
    println!("(wrote {path})");
}
