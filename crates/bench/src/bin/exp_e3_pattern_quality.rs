//! E3 — pattern-set quality (coverage / diversity / cognitive load):
//! data-driven selections vs the random baseline, on both repository
//! regimes (§2.3's "high coverage, high diversity, low cognitive load"
//! desiderata).

use aurora::Aurora;
use bench::{
    enable_metrics, print_cache_stats, print_table, time_ms, write_json, write_metrics_json,
};
use catapult::Catapult;
use serde::Serialize;
use tattoo::Tattoo;
use vqi_core::budget::PatternBudget;
use vqi_core::repo::GraphRepository;
use vqi_core::score::{evaluate, QualityWeights};
use vqi_core::selector::{PatternSelector, RandomSelector};
use vqi_datasets::{aids_like, dblp_like, MoleculeParams};
use vqi_modular::ModularPipeline;

#[derive(Serialize)]
struct Row {
    repo: &'static str,
    selector: String,
    patterns: usize,
    coverage: f64,
    diversity: f64,
    cognitive_load: f64,
    score: f64,
    select_ms: f64,
}

fn run(
    repo_name: &'static str,
    repo: &GraphRepository,
    budget: &PatternBudget,
    rows: &mut Vec<Row>,
) {
    let selectors: Vec<(String, Box<dyn PatternSelector>)> = vec![
        ("catapult".into(), Box::new(Catapult::default())),
        ("aurora".into(), Box::new(Aurora::default())),
        ("tattoo".into(), Box::new(Tattoo::default())),
        ("modular".into(), Box::new(ModularPipeline::standard())),
        ("random".into(), Box::new(RandomSelector::new(99))),
    ];
    for (name, sel) in selectors {
        let (set, ms) = time_ms(|| sel.select(repo, budget));
        let q = evaluate(&set, repo, QualityWeights::default());
        rows.push(Row {
            repo: repo_name,
            selector: name,
            patterns: set.len(),
            coverage: q.coverage,
            diversity: q.diversity,
            cognitive_load: q.cognitive_load,
            score: q.score,
            select_ms: ms,
        });
    }
}

fn main() {
    enable_metrics();
    let mut rows = Vec::new();
    let collection = GraphRepository::collection(aids_like(MoleculeParams {
        count: 150,
        seed: 55,
        ..Default::default()
    }));
    run(
        "collection",
        &collection,
        &PatternBudget::new(8, 4, 8),
        &mut rows,
    );
    let network = GraphRepository::network(dblp_like(1_500, 56));
    run("network", &network, &PatternBudget::new(8, 4, 7), &mut rows);

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.repo.to_string(),
                r.selector.clone(),
                r.patterns.to_string(),
                format!("{:.3}", r.coverage),
                format!("{:.3}", r.diversity),
                format!("{:.3}", r.cognitive_load),
                format!("{:.3}", r.score),
                format!("{:.0}", r.select_ms),
            ]
        })
        .collect();
    print_table(
        "E3: pattern-set quality by selector",
        &[
            "repo",
            "selector",
            "k",
            "coverage",
            "diversity",
            "cogload",
            "score",
            "ms",
        ],
        &table,
    );
    write_json("e3_pattern_quality", &rows);
    print_cache_stats();
    write_metrics_json("e3_pattern_quality");

    // shape: the regime-appropriate data-driven selector beats random
    for repo in ["collection", "network"] {
        let best_dd = rows
            .iter()
            .filter(|r| r.repo == repo && r.selector != "random")
            .map(|r| r.score)
            .fold(f64::MIN, f64::max);
        let random = rows
            .iter()
            .find(|r| r.repo == repo && r.selector == "random")
            .unwrap()
            .score;
        assert!(
            best_dd >= random,
            "{repo}: best data-driven {best_dd:.3} < random {random:.3}"
        );
    }
}
