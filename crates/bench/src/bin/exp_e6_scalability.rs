//! E6 — scalability on large networks (§2.3: "the clustering-based
//! approach is prohibitively expensive" for large networks; TATTOO's
//! truss-based extraction is why it exists). We time both selectors on
//! growing networks. Shape: CATAPULT's cost (feature mining + closure
//! over the whole network treated as a one-graph collection) grows much
//! faster than TATTOO's.

use bench::{
    enable_metrics, print_cache_stats, print_table, timed_ms, write_json, write_metrics_json,
};
use catapult::Catapult;
use serde::Serialize;
use tattoo::Tattoo;
use vqi_core::budget::PatternBudget;
use vqi_core::repo::GraphRepository;
use vqi_core::selector::PatternSelector;
use vqi_datasets::dblp_like;

#[derive(Serialize)]
struct Row {
    nodes: usize,
    edges: usize,
    tattoo_ms: f64,
    catapult_ms: f64,
    ratio: f64,
}

fn main() {
    enable_metrics();
    let budget = PatternBudget::new(6, 4, 6);
    let mut rows = Vec::new();
    for nodes in [250usize, 500, 1_000, 2_000] {
        let net = dblp_like(nodes, 77);
        let edges = net.edge_count();
        let repo = GraphRepository::network(net);
        let (_, tattoo_ms) = timed_ms(&format!("e6.tattoo.n{nodes}"), || {
            Tattoo::default().select(&repo, &budget)
        });
        let (_, catapult_ms) = timed_ms(&format!("e6.catapult.n{nodes}"), || {
            Catapult::default().select(&repo, &budget)
        });
        rows.push(Row {
            nodes,
            edges,
            tattoo_ms,
            catapult_ms,
            ratio: catapult_ms / tattoo_ms.max(1e-9),
        });
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.nodes.to_string(),
                r.edges.to_string(),
                format!("{:.0}", r.tattoo_ms),
                format!("{:.0}", r.catapult_ms),
                format!("{:.1}x", r.ratio),
            ]
        })
        .collect();
    print_table(
        "E6: selection time vs network size",
        &["nodes", "edges", "tattoo ms", "catapult ms", "cat/tat"],
        &table,
    );
    write_json("e6_scalability", &rows);
    print_cache_stats();
    write_metrics_json("e6_scalability");

    // shape: the gap grows with network size
    let first = rows.first().unwrap().ratio;
    let last = rows.last().unwrap().ratio;
    println!(
        "catapult/tattoo cost ratio: {first:.1}x at {} nodes -> {last:.1}x at {} nodes",
        rows.first().unwrap().nodes,
        rows.last().unwrap().nodes
    );
}
