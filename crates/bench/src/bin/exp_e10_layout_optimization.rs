//! E10 (extension, §2.5 "aesthetics-aware data-driven VQIs") — layout
//! optimization ablation: circular baseline vs force-directed vs
//! simulated-annealing refinement, measured with the aesthetic metrics
//! and Berlyne pleasantness. Shape: annealing never worsens the
//! objective and reduces crossings on dense stimuli.

use bench::{print_table, time_ms, write_json};
use serde::Serialize;
use vqi_core::aesthetics::{berlyne_pleasantness, visual_complexity};
use vqi_core::layout::{circular, force_directed, LayoutParams};
use vqi_core::optimize::{anneal_layout, layout_cost, AnnealParams, LayoutObjective};
use vqi_graph::generate as gen;
use vqi_graph::Graph;

#[derive(Serialize)]
struct Row {
    stimulus: String,
    method: &'static str,
    crossings: usize,
    cost: f64,
    complexity: f64,
    pleasantness: f64,
    ms: f64,
}

fn main() {
    let stimuli: Vec<(String, Graph)> = vec![
        ("5-cycle".into(), gen::cycle(5, 0, 0)),
        ("petal(3,2)".into(), gen::petal(3, 2, 0, 0)),
        ("flower(3,4)".into(), gen::flower(3, 4, 0, 0)),
        ("K5".into(), gen::clique(5, 0, 0)),
        ("K6".into(), gen::clique(6, 0, 0)),
    ];
    let obj = LayoutObjective::default();
    let optimum = 2.4; // complexity of a moderate stimulus (see E7)
    let sigma = 1.5;

    let mut rows = Vec::new();
    for (name, g) in &stimuli {
        let circ = circular(g, 200.0, 200.0);
        let fr = force_directed(g, LayoutParams::default());
        let ((annealed, _), anneal_ms) =
            time_ms(|| anneal_layout(g, &fr, &obj, AnnealParams::default()));
        for (method, layout, ms) in [
            ("circular", &circ, 0.0),
            ("force-directed", &fr, 0.0),
            ("annealed", &annealed, anneal_ms),
        ] {
            let vc = visual_complexity(g, layout);
            rows.push(Row {
                stimulus: name.clone(),
                method,
                crossings: vc.crossings,
                cost: layout_cost(g, layout, &obj),
                complexity: vc.complexity,
                pleasantness: berlyne_pleasantness(vc.complexity, optimum, sigma),
                ms,
            });
        }
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.stimulus.clone(),
                r.method.to_string(),
                r.crossings.to_string(),
                format!("{:.3}", r.cost),
                format!("{:.2}", r.complexity),
                format!("{:.3}", r.pleasantness),
                format!("{:.0}", r.ms),
            ]
        })
        .collect();
    print_table(
        "E10: layout method ablation (aesthetic objective, lower cost is better)",
        &[
            "stimulus",
            "method",
            "crossings",
            "cost",
            "complexity",
            "pleasant",
            "ms",
        ],
        &table,
    );
    write_json("e10_layout_optimization", &rows);

    // shape: annealed never costs more than force-directed
    for chunk in rows.chunks(3) {
        let fr = &chunk[1];
        let an = &chunk[2];
        assert!(
            an.cost <= fr.cost + 1e-9,
            "{}: annealed {} > fr {}",
            fr.stimulus,
            an.cost,
            fr.cost
        );
    }
    println!("annealing never worsened the aesthetic objective");
}
