//! Kernel microbenchmark — naive vs label-indexed matching kernels.
//!
//! Three sections, each asserting the indexed path is answer-identical
//! to the naive one before reporting timings:
//!
//! 1. **coverage** — `covered_edges` of patterns sampled from a
//!    DBLP-like network, naive vs [`GraphIndex`]-backed (the one-off
//!    index build is timed separately and included in the indexed
//!    total, so the comparison is end-to-end honest);
//! 2. **iso** — `is_subgraph_isomorphic` of molecular motifs over a
//!    PubChem-like collection, naive vs per-graph indexes;
//! 3. **mcs fold** — the greedy diversity fold (running max similarity
//!    per candidate) computed with exact `mcs_similarity` vs the
//!    threshold-seeded `mcs_similarity_bounded`, asserting the final
//!    running maxima are bit-identical.
//!
//! Writes `BENCH_kernels.json` at the repository root. The JSON is
//! hand-rolled (flat, three objects) so the binary also builds under
//! the offline stub toolchain, whose `serde_json` cannot serialize.

use bench::{enable_metrics, print_table, time_ms};
use vqi_core::score::coverage_match_options;
use vqi_datasets::{dblp_like, pubchem_like};
use vqi_graph::generate::{chain, clique, cycle, star};
use vqi_graph::index::GraphIndex;
use vqi_graph::iso::{
    count_embeddings, count_embeddings_indexed, covered_edges, covered_edges_indexed,
};
use vqi_graph::mcs::{mcs_similarity, mcs_similarity_bounded};
use vqi_graph::{Graph, NodeId};

/// Patterns sampled from `g` itself (guaranteed to occur): each seed
/// node plus up to three neighbors, as an induced subgraph.
fn sampled_patterns(g: &Graph, seeds: usize) -> Vec<Graph> {
    let n = g.node_count() as u32;
    let mut out = Vec::new();
    for k in 0..seeds as u32 {
        let v = NodeId((k * 97 + 13) % n);
        let mut nodes = vec![v];
        nodes.extend(g.neighbors(v).map(|(u, _)| u).take(3));
        nodes.sort_unstable();
        nodes.dedup();
        let (sub, _) = g.induced_subgraph(&nodes);
        if sub.edge_count() > 0 {
            out.push(sub);
        }
    }
    out
}

fn section_coverage() -> (f64, f64, f64) {
    let net = dblp_like(1_200, 7);
    let mut patterns = sampled_patterns(&net, 8);
    // label alphabets the network does not use: the fingerprint check
    // rejects these without a single VF2 state
    patterns.push(chain(4, 99, 9));
    patterns.push(clique(4, 77, 7));
    let opts = coverage_match_options();
    let reps = 10;

    // warm up both paths once so neither side pays first-touch costs
    let warm_idx = GraphIndex::build(&net);
    for p in &patterns {
        covered_edges(p, &net, opts);
        covered_edges_indexed(p, &net, &warm_idx, opts);
    }

    let (naive, naive_ms) = time_ms(|| {
        let mut last = Vec::new();
        for _ in 0..reps {
            last = patterns
                .iter()
                .map(|p| covered_edges(p, &net, opts))
                .collect::<Vec<_>>();
        }
        last
    });
    let (idx, build_ms) = time_ms(|| GraphIndex::build(&net));
    let (indexed, match_ms) = time_ms(|| {
        let mut last = Vec::new();
        for _ in 0..reps {
            last = patterns
                .iter()
                .map(|p| covered_edges_indexed(p, &net, &idx, opts))
                .collect::<Vec<_>>();
        }
        last
    });
    assert_eq!(naive, indexed, "indexed coverage diverged from naive");
    (naive_ms, build_ms + match_ms, build_ms)
}

fn section_iso() -> (f64, f64) {
    // counting *all* embeddings (not just deciding occurrence) is the
    // shape of `covered_edges`' inner loop and cannot short-circuit on
    // the first match, so candidate filtering and signature pruning
    // carry the full weight here
    let molecules = pubchem_like(300, 11);
    let mut patterns: Vec<Graph> = molecules
        .iter()
        .take(10)
        .flat_map(|m| sampled_patterns(m, 2))
        .collect();
    patterns.push(cycle(5, 99, 9)); // infeasible everywhere
    let opts = coverage_match_options();

    let (naive, naive_ms) = time_ms(|| {
        patterns
            .iter()
            .map(|p| molecules.iter().map(|m| count_embeddings(p, m, opts)).sum())
            .collect::<Vec<usize>>()
    });
    let (counts, indexed_ms) = time_ms(|| {
        let indexes: Vec<GraphIndex> = molecules.iter().map(GraphIndex::build).collect();
        patterns
            .iter()
            .map(|p| {
                molecules
                    .iter()
                    .zip(&indexes)
                    .map(|(m, ix)| count_embeddings_indexed(p, m, ix, opts))
                    .sum()
            })
            .collect::<Vec<usize>>()
    });
    assert_eq!(
        naive, counts,
        "indexed embedding counts diverged from naive"
    );
    (naive_ms, indexed_ms)
}

fn section_mcs_fold() -> (f64, f64) {
    // a motif pool like the ones the greedy selectors fold over: mixed
    // shapes, sizes and label families
    let mut pool: Vec<Graph> = Vec::new();
    for l in 0..4u32 {
        for n in [6usize, 8, 10] {
            pool.push(chain(n, l, 0));
            pool.push(cycle(n, l, 0));
            pool.push(star(n, l, 0));
        }
        pool.push(clique(5, l, 0));
    }
    let selected: Vec<Graph> = pool.drain(..6).collect();

    let (exact, naive_ms) = time_ms(|| {
        let mut max_sim = vec![0.0f64; pool.len()];
        for s in &selected {
            for (m, p) in max_sim.iter_mut().zip(&pool) {
                *m = f64::max(*m, mcs_similarity(p, s));
            }
        }
        max_sim
    });
    let (bounded, bounded_ms) = time_ms(|| {
        let mut max_sim = vec![0.0f64; pool.len()];
        for s in &selected {
            for (m, p) in max_sim.iter_mut().zip(&pool) {
                *m = f64::max(*m, mcs_similarity_bounded(p, s, *m));
            }
        }
        max_sim
    });
    assert_eq!(exact, bounded, "bounded fold diverged from the exact fold");
    (naive_ms, bounded_ms)
}

fn main() {
    enable_metrics();

    let (cov_naive, cov_indexed, cov_build) = section_coverage();
    let (iso_naive, iso_indexed) = section_iso();
    let (mcs_naive, mcs_bounded) = section_mcs_fold();

    let rows = vec![
        vec![
            "coverage (network)".to_string(),
            format!("{cov_naive:.1}"),
            format!("{cov_indexed:.1}"),
            format!("{:.1}x", cov_naive / cov_indexed.max(1e-9)),
        ],
        vec![
            "iso (collection)".to_string(),
            format!("{iso_naive:.1}"),
            format!("{iso_indexed:.1}"),
            format!("{:.1}x", iso_naive / iso_indexed.max(1e-9)),
        ],
        vec![
            "mcs greedy fold".to_string(),
            format!("{mcs_naive:.1}"),
            format!("{mcs_bounded:.1}"),
            format!("{:.1}x", mcs_naive / mcs_bounded.max(1e-9)),
        ],
    ];
    print_table(
        "Kernels: naive vs label-indexed (answer-identical)",
        &["section", "naive ms", "indexed ms", "speedup"],
        &rows,
    );
    println!("(coverage indexed total includes {cov_build:.1} ms of index build)");

    let snapshot = vqi_observe::snapshot();
    let mut kernel_counters: Vec<(String, u64)> = snapshot
        .counters
        .iter()
        .filter(|(name, _)| name.starts_with("kernel."))
        .map(|(name, &v)| (name.clone(), v))
        .collect();
    kernel_counters.sort();
    for (name, v) in &kernel_counters {
        println!("  {name} = {v}");
    }

    // hand-rolled JSON so the offline stub toolchain can build this too
    let counters_json: Vec<String> = kernel_counters
        .iter()
        .map(|(name, v)| format!("    \"{name}\": {v}"))
        .collect();
    let json = format!(
        "{{\n  \"coverage\": {{\"naive_ms\": {cov_naive:.3}, \"indexed_ms\": {cov_indexed:.3}, \
         \"index_build_ms\": {cov_build:.3}}},\n  \"iso\": {{\"naive_ms\": {iso_naive:.3}, \
         \"indexed_ms\": {iso_indexed:.3}}},\n  \"mcs_fold\": {{\"naive_ms\": {mcs_naive:.3}, \
         \"bounded_ms\": {mcs_bounded:.3}}},\n  \"kernel_counters\": {{\n{}\n  }}\n}}\n",
        counters_json.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kernels.json");
    std::fs::write(path, json).expect("write BENCH_kernels.json");
    println!("(wrote {path})");
}
