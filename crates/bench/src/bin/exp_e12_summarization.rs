//! E12 (extension, §2.5 "Beyond VQIs") — pattern-based graph
//! summarization: canned patterns as visualization-friendly supernodes.
//!
//! The tutorial's claim is not raw compression (contracting every edge
//! with a wildcard "basic" pattern trivially halves the node count) but
//! *palatability*: summaries built from the Pattern Panel absorb nodes
//! into larger, user-recognizable shapes. We therefore report, per
//! pattern source: compression, node coverage, mean supernode size, and
//! the fraction of absorbed nodes sitting in canned (size ≥ 4)
//! supernodes. Shape: the full panel (basic + canned) compresses at
//! least as hard as basic-only while absorbing far more nodes into
//! recognizable canned shapes.

use bench::{print_table, write_json};
use serde::Serialize;
use tattoo::Tattoo;
use vqi_core::budget::PatternBudget;
use vqi_core::pattern::{default_basic_patterns, PatternKind, PatternSet};
use vqi_core::repo::GraphRepository;
use vqi_core::selector::{PatternSelector, RandomSelector};
use vqi_core::summary::{summarize, SummaryOptions};
use vqi_datasets::dblp_like;

#[derive(Serialize)]
struct Row {
    pattern_source: &'static str,
    patterns: usize,
    summary_nodes: usize,
    node_coverage: f64,
    compression_ratio: f64,
    mean_supernode_size: f64,
    canned_node_fraction: f64,
}

fn with_basics(canned: &PatternSet) -> PatternSet {
    let mut set = default_basic_patterns();
    for p in canned.patterns() {
        let _ = set.insert(p.graph.clone(), PatternKind::Canned, p.provenance.clone());
    }
    set
}

fn main() {
    let net = dblp_like(800, 123);
    println!(
        "network: {} nodes, {} edges\n",
        net.node_count(),
        net.edge_count()
    );
    let repo = GraphRepository::network(net.clone());
    let budget = PatternBudget::new(8, 4, 7);

    let tattoo_set = Tattoo::default().select(&repo, &budget);
    let random_set = RandomSelector::new(5).select(&repo, &budget);
    let sources: Vec<(&'static str, PatternSet)> = vec![
        ("panel (basic+tattoo)", with_basics(&tattoo_set)),
        ("tattoo only", tattoo_set),
        ("random only", random_set),
        ("basic only", default_basic_patterns()),
    ];

    let mut rows = Vec::new();
    for (name, set) in &sources {
        let s = summarize(&net, set, SummaryOptions::default());
        let absorbed: usize = s
            .supernodes
            .iter()
            .filter(|sn| sn.pattern.is_some())
            .map(|sn| sn.members.len())
            .sum();
        let pattern_supernodes = s
            .supernodes
            .iter()
            .filter(|sn| sn.pattern.is_some())
            .count()
            .max(1);
        let canned_nodes: usize = s
            .supernodes
            .iter()
            .filter(|sn| sn.members.len() >= 4)
            .map(|sn| sn.members.len())
            .sum();
        rows.push(Row {
            pattern_source: name,
            patterns: set.len(),
            summary_nodes: s.graph.node_count(),
            node_coverage: s.node_coverage,
            compression_ratio: s.compression_ratio,
            mean_supernode_size: absorbed as f64 / pattern_supernodes as f64,
            canned_node_fraction: if absorbed == 0 {
                0.0
            } else {
                canned_nodes as f64 / absorbed as f64
            },
        });
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.pattern_source.to_string(),
                r.patterns.to_string(),
                r.summary_nodes.to_string(),
                format!("{:.3}", r.node_coverage),
                format!("{:.3}", r.compression_ratio),
                format!("{:.2}", r.mean_supernode_size),
                format!("{:.3}", r.canned_node_fraction),
            ]
        })
        .collect();
    print_table(
        "E12: pattern-based summarization of an 800-node network",
        &[
            "patterns",
            "k",
            "summary n",
            "node cov",
            "compression",
            "mean |SN|",
            "canned frac",
        ],
        &table,
    );
    write_json("e12_summarization", &rows);

    let panel = &rows[0];
    let basic = rows
        .iter()
        .find(|r| r.pattern_source == "basic only")
        .unwrap();
    assert!(
        panel.compression_ratio <= basic.compression_ratio + 1e-9,
        "panel compresses no worse than basic-only"
    );
    assert!(
        panel.canned_node_fraction > basic.canned_node_fraction,
        "panel absorbs more nodes into recognizable canned shapes"
    );
    assert!(
        panel.mean_supernode_size > basic.mean_supernode_size,
        "panel supernodes are larger"
    );
    println!(
        "panel summary: {:.1}% of nodes in canned shapes (basic-only: {:.1}%), compression {:.3} vs {:.3}",
        100.0 * panel.canned_node_fraction,
        100.0 * basic.canned_node_fraction,
        panel.compression_ratio,
        basic.compression_ratio
    );
}
