//! E5 — approximation quality of TATTOO's greedy selection (§2.3: "the
//! selection algorithm guarantees 1/e-approximation"). On instances
//! small enough to brute-force the optimum, we report the achieved
//! greedy/OPT ratio; the shape claim is that it sits at or above 1−1/e
//! (and far above the paper's conservative 1/e bound).

use bench::{enable_metrics, print_cache_stats, print_table, write_json, write_metrics_json};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::Serialize;
use tattoo::candidates::{extract_from_region, ExtractParams};
use tattoo::select::{
    exhaustive_best, greedy_select, score_candidates, set_score, ScoredCandidate,
};
use vqi_core::budget::PatternBudget;
use vqi_core::score::QualityWeights;
use vqi_datasets::dblp_like;

#[derive(Serialize)]
struct Row {
    instance: usize,
    candidates: usize,
    k: usize,
    greedy_score: f64,
    optimal_score: f64,
    ratio: f64,
}

fn main() {
    enable_metrics();
    let weights = QualityWeights::default();
    let mut rows = Vec::new();

    for (instance, seed) in (0..6).map(|i| (i, 1000 + i as u64)) {
        let net = dblp_like(150, seed);
        let budget = PatternBudget::new(3, 4, 5);
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut cands = extract_from_region(
            &net,
            true,
            &budget,
            ExtractParams {
                samples_per_size: 12,
            },
            &mut rng,
        );
        cands.truncate(10); // keep the exhaustive search tractable
        let scored = score_candidates(cands, &net);
        if scored.len() < 4 {
            continue;
        }
        for k in [2usize, 3] {
            let (opt, _) = exhaustive_best(&scored, net.edge_count(), k, weights);
            let greedy_set = greedy_select(
                scored.clone(),
                net.edge_count(),
                &PatternBudget::new(k, 4, 5),
                weights,
            );
            let chosen: Vec<&ScoredCandidate> = greedy_set
                .patterns()
                .iter()
                .filter_map(|p| scored.iter().find(|s| s.candidate.code == p.code))
                .collect();
            let greedy_score = set_score(&chosen, net.edge_count(), weights);
            rows.push(Row {
                instance,
                candidates: scored.len(),
                k,
                greedy_score,
                optimal_score: opt,
                ratio: greedy_score / opt.max(1e-12),
            });
        }
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.instance.to_string(),
                r.candidates.to_string(),
                r.k.to_string(),
                format!("{:.4}", r.greedy_score),
                format!("{:.4}", r.optimal_score),
                format!("{:.3}", r.ratio),
            ]
        })
        .collect();
    print_table(
        "E5: greedy vs exhaustive optimum (brute-forced small instances)",
        &["inst", "|C|", "k", "greedy", "OPT", "ratio"],
        &table,
    );
    write_json("e5_approximation", &rows);
    print_cache_stats();
    write_metrics_json("e5_approximation");

    let bound = 1.0 - 1.0 / std::f64::consts::E;
    let min_ratio = rows.iter().map(|r| r.ratio).fold(f64::MAX, f64::min);
    println!(
        "worst ratio: {min_ratio:.3}; 1-1/e = {bound:.3}; 1/e = {:.3}",
        1.0 / std::f64::consts::E
    );
    assert!(
        min_ratio >= 1.0 / std::f64::consts::E,
        "ratio fell below the paper's 1/e bound"
    );
}
