//! Fault-injection benchmark for the runtime-robustness layer.
//!
//! Two sections, both assertion-gated before anything is reported:
//!
//! 1. **No-fault overhead** — every pipeline runs its plain entry point
//!    and its budget-aware (`*_ctrl`) entry point under an unlimited
//!    budget with fault injection off. The selections are asserted
//!    bit-identical and the timing ratio is the overhead of the budget
//!    checks (acceptance: ≤ 5%).
//! 2. **Fault matrix** — injected kernel panics, stage timeouts, and
//!    NaN scores (rate 1.0, two seeds, thread caps 1/2/4). Every
//!    pipeline must finish `Complete` or `Degraded` — the process
//!    crashing IS the failure mode under test — and the (codes,
//!    completeness) pair is asserted identical across thread caps.
//!
//! Writes `BENCH_faults.json` at the repository root. The JSON is
//! hand-rolled (as in `exp_kernels`) so the binary also builds under
//! the offline stub toolchain, whose `serde_json` cannot serialize.

use bench::{enable_metrics, print_table, time_ms};
use catapult::pipeline::Catapult;
use midas::{Midas, MidasConfig};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use tattoo::partitioned::PartitionedTattoo;
use tattoo::pipeline::{Tattoo, TattooConfig};
use vqi_core::budget::PatternBudget;
use vqi_core::ctrl::{Budget, Completeness};
use vqi_core::pattern::PatternSet;
use vqi_core::repo::{BatchUpdate, GraphCollection};
use vqi_graph::canon::CanonicalCode;
use vqi_graph::generate::{barabasi_albert, chain, clique, cycle, star};
use vqi_graph::par;
use vqi_graph::Graph;
use vqi_modular::pipeline::ModularPipeline;
use vqi_runtime::fault::{self, FaultPlan};

fn selection_codes(set: &PatternSet) -> Vec<CanonicalCode> {
    let mut codes: Vec<CanonicalCode> = set.patterns().iter().map(|p| p.code.clone()).collect();
    codes.sort();
    codes
}

fn collection_graphs() -> Vec<Graph> {
    let mut graphs = Vec::new();
    for i in 0..6 {
        graphs.push(chain(5 + i % 3, 1, 0));
        graphs.push(cycle(5 + i % 2, 2, 0));
        graphs.push(star(4 + i % 3, 3, 0));
    }
    graphs
}

fn network() -> Graph {
    let mut rng = SmallRng::seed_from_u64(47);
    barabasi_albert(300, 3, 1, &mut rng)
}

const REPS: usize = 5;

/// Times `plain` and `ctrl_run` interleaved over [`REPS`] repetitions
/// (after a warm-up pass so both see the same kernel-cache state) and
/// keeps the per-path minimum — the least-noise estimator for a
/// deterministic workload — asserting on every repetition that the
/// ctrl path is `Complete` and selects the identical set.
fn overhead_of(
    name: &str,
    plain: impl Fn() -> PatternSet,
    ctrl_run: impl Fn() -> (PatternSet, bool),
) -> (f64, f64) {
    plain();
    ctrl_run();
    let (mut plain_best, mut ctrl_best) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..REPS {
        let (want, plain_ms) = time_ms(&plain);
        let ((got, complete), ctrl_ms) = time_ms(&ctrl_run);
        assert!(complete, "{name}: no-fault ctrl run was not Complete");
        assert_eq!(
            selection_codes(&want),
            selection_codes(&got),
            "{name}: budget-aware path diverged from the plain pipeline"
        );
        plain_best = plain_best.min(plain_ms);
        ctrl_best = ctrl_best.min(ctrl_ms);
    }
    (plain_best, ctrl_best)
}

/// One fault-matrix cell: all five pipelines under the installed-plan
/// parameters at one thread cap. Returns per-pipeline (codes, degraded)
/// — the determinism key compared across caps.
fn run_all_under(plan: FaultPlan, cap: usize) -> Vec<(String, Vec<CanonicalCode>, bool)> {
    par::set_thread_cap(cap);
    let budget = PatternBudget::new(5, 4, 6);
    let relaxed = Budget::unlimited();
    let mut out = Vec::new();

    fault::set_plan(plan);
    let cat = Catapult::default()
        .run_ctrl(
            &GraphCollection::new(collection_graphs()),
            &budget,
            &relaxed,
        )
        .expect("relaxed budget never errors");
    out.push((
        "catapult".to_string(),
        selection_codes(&cat.value),
        !cat.completeness.is_complete(),
    ));

    fault::set_plan(plan);
    let tat = Tattoo::default()
        .run_ctrl(&network(), &budget, &relaxed)
        .expect("relaxed budget never errors");
    out.push((
        "tattoo".to_string(),
        selection_codes(&tat.value),
        !tat.completeness.is_complete(),
    ));

    fault::set_plan(plan);
    let mut part = PartitionedTattoo::new(TattooConfig::default(), 4);
    part.retry_backoff_ms = 0;
    let par_out = part
        .run_ctrl(&network(), &budget, &relaxed)
        .expect("relaxed budget never errors");
    out.push((
        "tattoo-partitioned".to_string(),
        selection_codes(&par_out.value),
        !par_out.completeness.is_complete(),
    ));

    fault::set_plan(plan);
    let modular = ModularPipeline::standard()
        .run_ctrl(
            &GraphCollection::new(collection_graphs()),
            &budget,
            &relaxed,
        )
        .expect("relaxed budget never errors");
    out.push((
        "modular".to_string(),
        selection_codes(&modular.value),
        !modular.completeness.is_complete(),
    ));

    // midas bootstraps fault-free; only the maintenance pass is attacked
    fault::reset();
    let mut m = Midas::bootstrap(
        GraphCollection::new(collection_graphs()),
        budget,
        MidasConfig::default(),
    );
    fault::set_plan(plan);
    let mut batch = Vec::new();
    for _ in 0..8 {
        batch.push(clique(5, 3, 0));
        batch.push(star(6, 4, 0));
    }
    let rep = m
        .apply_update_ctrl(BatchUpdate::adding(batch), &relaxed)
        .expect("relaxed budget never errors");
    out.push((
        "midas".to_string(),
        selection_codes(&m.patterns),
        !rep.completeness.is_complete(),
    ));

    fault::reset();
    par::set_thread_cap(0);
    out
}

fn main() {
    enable_metrics();
    let budget = PatternBudget::new(5, 4, 6);
    let relaxed = Budget::unlimited();

    // -- section 1: no-fault overhead ---------------------------------
    let outcome_pair = |o: vqi_core::ctrl::PipelineOutcome<PatternSet>| {
        let complete = matches!(o.completeness, Completeness::Complete);
        (o.value, complete)
    };
    let (cat_plain, cat_ctrl) = overhead_of(
        "catapult",
        || {
            let col = GraphCollection::new(collection_graphs());
            Catapult::default().run_with_state(&col, &budget).0
        },
        || {
            let col = GraphCollection::new(collection_graphs());
            outcome_pair(
                Catapult::default()
                    .run_ctrl(&col, &budget, &relaxed)
                    .expect("relaxed budget never errors"),
            )
        },
    );
    let net = network();
    let (tat_plain, tat_ctrl) = overhead_of(
        "tattoo",
        || Tattoo::default().run(&net, &budget),
        || {
            outcome_pair(
                Tattoo::default()
                    .run_ctrl(&net, &budget, &relaxed)
                    .expect("relaxed budget never errors"),
            )
        },
    );
    let (mod_plain, mod_ctrl) = overhead_of(
        "modular",
        || {
            let col = GraphCollection::new(collection_graphs());
            ModularPipeline::standard().run(&col, &budget)
        },
        || {
            let col = GraphCollection::new(collection_graphs());
            outcome_pair(
                ModularPipeline::standard()
                    .run_ctrl(&col, &budget, &relaxed)
                    .expect("relaxed budget never errors"),
            )
        },
    );
    let midas_batch = || {
        let mut batch = Vec::new();
        for _ in 0..8 {
            batch.push(clique(5, 3, 0));
            batch.push(star(6, 4, 0));
        }
        batch
    };
    let (mid_plain, mid_ctrl) = overhead_of(
        "midas",
        || {
            let mut m = Midas::bootstrap(
                GraphCollection::new(collection_graphs()),
                budget,
                MidasConfig::default(),
            );
            m.apply_update(BatchUpdate::adding(midas_batch()));
            m.patterns
        },
        || {
            let mut m = Midas::bootstrap(
                GraphCollection::new(collection_graphs()),
                budget,
                MidasConfig::default(),
            );
            let rep = m
                .apply_update_ctrl(BatchUpdate::adding(midas_batch()), &relaxed)
                .expect("relaxed budget never errors");
            let complete = matches!(rep.completeness, Completeness::Complete);
            (m.patterns, complete)
        },
    );

    let ratio = |p: f64, c: f64| c / p.max(1e-9);
    let overhead_rows: Vec<(&str, f64, f64)> = vec![
        ("catapult", cat_plain, cat_ctrl),
        ("tattoo", tat_plain, tat_ctrl),
        ("modular", mod_plain, mod_ctrl),
        ("midas", mid_plain, mid_ctrl),
    ];
    print_table(
        "No-fault overhead of the budget checks (identical selections)",
        &["pipeline", "plain ms", "ctrl ms", "ratio"],
        &overhead_rows
            .iter()
            .map(|(n, p, c)| {
                vec![
                    n.to_string(),
                    format!("{p:.1}"),
                    format!("{c:.1}"),
                    format!("{:.3}", ratio(*p, *c)),
                ]
            })
            .collect::<Vec<_>>(),
    );

    // -- section 2: fault matrix --------------------------------------
    let plans: Vec<(&str, FaultPlan)> = vec![
        (
            "panic",
            FaultPlan {
                panic_rate: 1.0,
                ..Default::default()
            },
        ),
        (
            "timeout",
            FaultPlan {
                timeout_rate: 1.0,
                ..Default::default()
            },
        ),
        (
            "nan",
            FaultPlan {
                nan_rate: 1.0,
                ..Default::default()
            },
        ),
    ];
    let mut matrix_rows: Vec<Vec<String>> = Vec::new();
    let mut matrix_json: Vec<String> = Vec::new();
    for (kind, base_plan) in &plans {
        for seed in [1u64, 2] {
            let plan = FaultPlan { seed, ..*base_plan };
            let at_1 = run_all_under(plan, 1);
            let at_2 = run_all_under(plan, 2);
            let at_4 = run_all_under(plan, 4);
            assert_eq!(at_1, at_2, "{kind}/seed {seed}: cap 2 diverged");
            assert_eq!(at_1, at_4, "{kind}/seed {seed}: cap 4 diverged");
            for (name, codes, degraded) in &at_1 {
                matrix_rows.push(vec![
                    kind.to_string(),
                    seed.to_string(),
                    name.clone(),
                    codes.len().to_string(),
                    if *degraded { "degraded" } else { "complete" }.to_string(),
                ]);
                matrix_json.push(format!(
                    "    {{\"plan\": \"{kind}\", \"seed\": {seed}, \"pipeline\": \"{name}\", \
                     \"patterns\": {}, \"outcome\": \"{}\", \
                     \"deterministic_across_caps\": true}}",
                    codes.len(),
                    if *degraded { "degraded" } else { "complete" },
                ));
            }
        }
    }
    print_table(
        "Injected faults (rate 1.0), caps 1/2/4 asserted identical",
        &["plan", "seed", "pipeline", "patterns", "outcome"],
        &matrix_rows,
    );

    // -- trace artifact: one exemplar degraded run ---------------------
    // a tattoo run under a full-rate timeout plan, journal armed: the
    // emitted Chrome trace shows fault.injected / budget.trip /
    // run.degraded instants inside the spans that absorbed them
    vqi_observe::set_journal_enabled(true);
    vqi_observe::journal_reset();
    fault::set_plan(FaultPlan {
        seed: 1,
        timeout_rate: 1.0,
        ..Default::default()
    });
    let traced = Tattoo::default()
        .run_ctrl(&network(), &PatternBudget::new(5, 4, 6), &relaxed)
        .expect("relaxed budget never errors");
    fault::reset();
    let trace_events = vqi_observe::journal_events();
    vqi_observe::set_journal_enabled(false);
    assert!(
        !traced.completeness.is_complete(),
        "full-rate timeouts must degrade the run"
    );
    let chrome = vqi_observe::chrome_trace(&trace_events);
    let stats = vqi_observe::validate_chrome_trace(&chrome).expect("emitted trace must validate");
    assert!(
        stats.instants > 0,
        "a degraded run must leave instant markers in the trace"
    );
    let trace_path = bench::experiments_dir().join("trace_faults.json");
    std::fs::write(&trace_path, chrome).expect("write fault trace");
    println!(
        "(wrote {}: {} spans, {} fault/budget/degradation instants)",
        trace_path.display(),
        stats.spans,
        stats.instants
    );

    let snapshot = vqi_observe::snapshot();
    let mut fault_counters: Vec<(String, u64)> = snapshot
        .counters
        .iter()
        .filter(|(name, _)| name.starts_with("fault.") || name.starts_with("tattoo.map."))
        .map(|(name, &v)| (name.clone(), v))
        .collect();
    fault_counters.sort();
    for (name, v) in &fault_counters {
        println!("  {name} = {v}");
    }

    // hand-rolled JSON so the offline stub toolchain can build this too
    let overhead_json: Vec<String> = overhead_rows
        .iter()
        .map(|(n, p, c)| {
            format!(
                "    \"{n}\": {{\"plain_ms\": {p:.3}, \"ctrl_ms\": {c:.3}, \"ratio\": {:.4}}}",
                ratio(*p, *c)
            )
        })
        .collect();
    let max_ratio = overhead_rows
        .iter()
        .map(|(_, p, c)| ratio(*p, *c))
        .fold(0.0f64, f64::max);
    let counters_json: Vec<String> = fault_counters
        .iter()
        .map(|(name, v)| format!("    \"{name}\": {v}"))
        .collect();
    let json = format!(
        "{{\n  \"reps\": {REPS},\n  \"overhead\": {{\n{}\n  }},\n  \"overhead_max_ratio\": \
         {max_ratio:.4},\n  \"fault_matrix\": [\n{}\n  ],\n  \"fault_counters\": {{\n{}\n  \
         }}\n}}\n",
        overhead_json.join(",\n"),
        matrix_json.join(",\n"),
        counters_json.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_faults.json");
    std::fs::write(path, json).expect("write BENCH_faults.json");
    println!("(wrote {path})");
}
