//! T1 — regenerates Table 1 of the paper (the tutorial overview) from
//! structured data. The tutorial's only table; kept as a completeness
//! check that every harness-addressable artifact in the paper is
//! regenerable.

use serde::Serialize;

#[derive(Serialize)]
struct Row {
    topic: &'static str,
    minutes: u32,
    representative_papers: &'static str,
    demo: &'static str,
    code: &'static str,
}

fn main() {
    bench::enable_metrics();
    let _t = vqi_observe::span("table1.generate");
    let rows = vec![
        Row {
            topic: "Introduction",
            minutes: 5,
            representative_papers: "-",
            demo: "No",
            code: "-",
        },
        Row {
            topic: "Usability of manual VQI",
            minutes: 15,
            representative_papers: "[2-4, 6, 16, 20, 21, 26, 38, 47]",
            demo: "Yes ([6, 26])",
            code: "-",
        },
        Row {
            topic: "The concept of data-driven VQI",
            minutes: 10,
            representative_papers: "[7, 10]",
            demo: "No",
            code: "-",
        },
        Row {
            topic: "Data-driven construction of VQIs",
            minutes: 30,
            representative_papers: "[12, 24, 45, 48, 51]",
            demo: "Yes ([12, 49, 51])",
            code: "github.com/MIDAS2020/CATAPULT",
        },
        Row {
            topic: "Data-driven maintenance of VQIs",
            minutes: 10,
            representative_papers: "[25]",
            demo: "Yes ([12])",
            code: "github.com/MIDAS2020/Midas",
        },
        Row {
            topic: "Future research direction",
            minutes: 15,
            representative_papers: "-",
            demo: "No",
            code: "-",
        },
    ];
    let total: u32 = rows.iter().map(|r| r.minutes).sum();
    assert_eq!(total, 85, "85 scheduled minutes of the 90-min slot");

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.topic.to_string(),
                r.minutes.to_string(),
                r.representative_papers.to_string(),
                r.demo.to_string(),
                r.code.to_string(),
            ]
        })
        .collect();
    bench::print_table(
        "Table 1: tutorial overview",
        &["Topic", "min", "Representative papers", "Demo", "Code"],
        &table,
    );
    bench::write_json("table1", &rows);
    drop(_t);
    bench::write_metrics_json("table1");
}
