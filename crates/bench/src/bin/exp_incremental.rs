//! Incremental-maintenance benchmark — delta kernels vs from-scratch.
//!
//! Sweeps edge-churn levels from 0.1% to 10% over a sparse random
//! network (uniform pairs plus planted cliques, so the k-truss has
//! non-trivial classes and the census sees every graphlet family) and
//! compares, per level:
//!
//! * **full** — `trussness` + `count_graphlets_par` on the updated
//!   graph, i.e. what a maintainer without delta kernels would pay on
//!   every batch;
//! * **incremental** — `TrussMaintainer::apply` +
//!   `CensusMaintainer::apply` of the same delta against maintainers
//!   seeded from the base graph.
//!
//! Before timing is reported, every level asserts the incremental
//! results are **bit-identical** to the from-scratch kernels at thread
//! caps 1, 2, and 4 — the equality contract of the maintainers, checked
//! in-bench on every batch size, not just in unit tests.
//!
//! Writes `BENCH_incremental.json` at the repository root (hand-rolled
//! JSON so the offline stub toolchain can build and run this too).

use bench::{enable_metrics, print_table, time_ms};
use vqi_graph::graphlet::{count_graphlets_par, CensusMaintainer};
use vqi_graph::par;
use vqi_graph::truss::{trussness, TrussMaintainer};
use vqi_graph::{EdgeDelta, Graph, NodeId};

const NODES: usize = 60_000;
const TARGET_EDGES: usize = 45_000;
const PLANTED_CLIQUES: usize = 150;
const CHURN_LEVELS: [f64; 5] = [0.001, 0.005, 0.01, 0.05, 0.10];

/// SplitMix64 step: a tiny deterministic stream without the rand crate.
fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// A sparse uniform random network with a few planted 5-cliques: the
/// uniform part keeps the degree low (incremental locality is the point
/// of the benchmark), the cliques give the truss decomposition classes
/// above 2 and the census all eight graphlet families.
fn random_network(seed: u64) -> Graph {
    let mut g = Graph::with_capacity(NODES, TARGET_EDGES);
    for _ in 0..NODES {
        g.add_node(0);
    }
    let mut state = seed;
    let mut edges = 0;
    for c in 0..PLANTED_CLIQUES {
        let base = (mix(&mut state) as usize) % (NODES - 5);
        let members: Vec<u32> = (0..5).map(|i| (base + i * (c % 3 + 1)) as u32).collect();
        for i in 0..5 {
            for j in (i + 1)..5 {
                if g.add_edge(NodeId(members[i]), NodeId(members[j]), 0)
                    .is_some()
                {
                    edges += 1;
                }
            }
        }
    }
    while edges < TARGET_EDGES {
        let u = (mix(&mut state) as usize % NODES) as u32;
        let v = (mix(&mut state) as usize % NODES) as u32;
        if g.add_edge(NodeId(u), NodeId(v), 0).is_some() {
            edges += 1;
        }
    }
    g
}

/// A mixed delta at the given churn level: half deletions (a stride
/// over the live edge list) and half insertions (fresh uniform pairs).
fn churn_delta(g: &Graph, churn: f64, seed: u64) -> EdgeDelta {
    let m = g.edge_count();
    let changed = ((churn * m as f64).round() as usize).max(2);
    let deletes = changed / 2;
    let inserts = changed - deletes;
    let mut delta = EdgeDelta::new();
    let stride = (m / deletes).max(1);
    for e in g.edges().step_by(stride).take(deletes) {
        let (u, v) = g.endpoints(e);
        delta.deletes.push((u.0, v.0));
    }
    let mut state = seed;
    while delta.inserts.len() < inserts {
        let u = (mix(&mut state) as usize % NODES) as u32;
        let v = (mix(&mut state) as usize % NODES) as u32;
        if u == v || g.has_edge(NodeId(u), NodeId(v)) {
            continue;
        }
        if delta.inserts.contains(&(u, v)) || delta.inserts.contains(&(v, u)) {
            continue;
        }
        delta.inserts.push((u, v));
    }
    delta
}

/// The updated graph, built from scratch: base edges minus the deletes
/// plus the inserts. This is the reference world both sides must match.
fn apply_to_graph(g: &Graph, delta: &EdgeDelta) -> Graph {
    let dead: std::collections::HashSet<(u32, u32)> = delta
        .deletes
        .iter()
        .map(|&(a, b)| if a <= b { (a, b) } else { (b, a) })
        .collect();
    let mut next = Graph::with_capacity(g.node_count(), g.edge_count() + delta.inserts.len());
    for v in g.nodes() {
        next.add_node(g.node_label(v));
    }
    for e in g.edges() {
        let (u, v) = g.endpoints(e);
        let key = if u.0 <= v.0 { (u.0, v.0) } else { (v.0, u.0) };
        if !dead.contains(&key) {
            next.add_edge(u, v, g.edge_label(e));
        }
    }
    for &(u, v) in &delta.inserts {
        next.add_edge(NodeId(u), NodeId(v), 0);
    }
    next
}

struct Level {
    churn: f64,
    deletes: usize,
    inserts: usize,
    full_ms: f64,
    incremental_ms: f64,
    speedup: f64,
    region_edges: usize,
    recounted_roots: usize,
}

fn main() {
    enable_metrics();
    let g = random_network(0x1DE17A);
    println!(
        "network: {} nodes, {} edges ({} planted 5-cliques)",
        g.node_count(),
        g.edge_count(),
        PLANTED_CLIQUES
    );

    // seeded once, untimed: the maintainers amortize this over every
    // subsequent batch, which is the whole point
    let truss_base = TrussMaintainer::new(&g);
    let census_base = CensusMaintainer::new(&g);

    let mut levels: Vec<Level> = Vec::new();
    for (i, &churn) in CHURN_LEVELS.iter().enumerate() {
        let delta = churn_delta(&g, churn, 0xD117A + i as u64);
        let updated = apply_to_graph(&g, &delta);

        // equality contract first: at caps 1, 2, and 4 the incremental
        // results must be bit-identical to the from-scratch kernels
        let mut across_caps: Option<(Vec<u32>, [u64; 8])> = None;
        for cap in [1usize, 2, 4] {
            par::set_thread_cap(cap);
            let mut tm = truss_base.clone();
            let mut cm = census_base.clone();
            tm.apply(&delta);
            cm.apply(&delta);
            let tvals = tm
                .trussness_for(&updated)
                .expect("maintainer lost an edge of the updated graph");
            let cbits = cm.counts().counts.map(f64::to_bits);
            assert_eq!(
                tvals,
                trussness(&updated),
                "cap {cap}, churn {churn}: incremental trussness != fresh peel"
            );
            assert_eq!(
                cbits,
                count_graphlets_par(&updated).counts.map(f64::to_bits),
                "cap {cap}, churn {churn}: incremental census != fresh count"
            );
            match &across_caps {
                None => across_caps = Some((tvals, cbits)),
                Some((t1, c1)) => {
                    assert_eq!(t1, &tvals, "cap {cap} changed the truss result");
                    assert_eq!(c1, &cbits, "cap {cap} changed the census result");
                }
            }
        }
        par::set_thread_cap(0);

        // timings at the default thread pool
        let (_, full_truss_ms) = time_ms(|| trussness(&updated));
        let (_, full_census_ms) = time_ms(|| count_graphlets_par(&updated));
        let mut tm = truss_base.clone();
        let mut cm = census_base.clone();
        let (tstats, inc_truss_ms) = time_ms(|| tm.apply(&delta));
        let (cstats, inc_census_ms) = time_ms(|| cm.apply(&delta));

        let full_ms = full_truss_ms + full_census_ms;
        let incremental_ms = inc_truss_ms + inc_census_ms;
        levels.push(Level {
            churn,
            deletes: delta.deletes.len(),
            inserts: delta.inserts.len(),
            full_ms,
            incremental_ms,
            speedup: full_ms / incremental_ms.max(1e-9),
            region_edges: tstats.region_edges,
            recounted_roots: cstats.recounted_roots,
        });
    }

    let rows: Vec<Vec<String>> = levels
        .iter()
        .map(|l| {
            vec![
                format!("{:.1}%", l.churn * 100.0),
                format!("{}+{}", l.deletes, l.inserts),
                format!("{:.2}", l.full_ms),
                format!("{:.2}", l.incremental_ms),
                format!("{:.1}x", l.speedup),
                l.region_edges.to_string(),
                l.recounted_roots.to_string(),
            ]
        })
        .collect();
    print_table(
        "Incremental maintenance: full recompute vs delta kernels (bit-identical at caps 1/2/4)",
        &[
            "churn",
            "del+ins",
            "full ms",
            "incr ms",
            "speedup",
            "truss region",
            "census roots",
        ],
        &rows,
    );

    let snapshot = vqi_observe::snapshot();
    let mut delta_counters: Vec<(String, u64)> = snapshot
        .counters
        .iter()
        .filter(|(name, _)| {
            name.starts_with("kernel.truss.delta.") || name.starts_with("kernel.census.delta.")
        })
        .map(|(name, &v)| (name.clone(), v))
        .collect();
    delta_counters.sort();
    for (name, v) in &delta_counters {
        println!("  {name} = {v}");
    }

    let level_json: Vec<String> = levels
        .iter()
        .map(|l| {
            format!(
                "    {{\"churn\": {:.4}, \"deletes\": {}, \"inserts\": {}, \"full_ms\": {:.3}, \
                 \"incremental_ms\": {:.3}, \"speedup\": {:.2}, \"truss_region_edges\": {}, \
                 \"census_recounted_roots\": {}}}",
                l.churn,
                l.deletes,
                l.inserts,
                l.full_ms,
                l.incremental_ms,
                l.speedup,
                l.region_edges,
                l.recounted_roots
            )
        })
        .collect();
    let counters_json: Vec<String> = delta_counters
        .iter()
        .map(|(name, v)| format!("    \"{name}\": {v}"))
        .collect();
    let json = format!(
        "{{\n  \"network\": {{\"nodes\": {}, \"edges\": {}, \"planted_cliques\": {}}},\n  \
         \"levels\": [\n{}\n  ],\n  \"delta_counters\": {{\n{}\n  }}\n}}\n",
        NODES,
        TARGET_EDGES,
        PLANTED_CLIQUES,
        level_json.join(",\n"),
        counters_json.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_incremental.json");
    std::fs::write(path, json).expect("write BENCH_incremental.json");
    println!("(wrote {path})");
}
