//! E2 — query formulation efficiency on a large network (reproduces the
//! §2.3 usability claim for TATTOO vs manual VQIs).

use bench::{print_table, write_json};
use serde::Serialize;
use tattoo::Tattoo;
use vqi_core::budget::PatternBudget;
use vqi_core::repo::GraphRepository;
use vqi_core::vqi::VisualQueryInterface;
use vqi_datasets::dblp_like;
use vqi_sim::cost::ActionCosts;
use vqi_sim::usability::evaluate_interface;
use vqi_sim::workload::{sample_queries, WorkloadParams};

#[derive(Serialize)]
struct Row {
    query_size: usize,
    tattoo_steps: f64,
    tattoo_time: f64,
    manual_steps: f64,
    manual_time: f64,
    patterns_per_query: f64,
}

fn main() {
    let net = dblp_like(3_000, 42);
    let repo = GraphRepository::network(net);
    let budget = PatternBudget::new(10, 4, 8);
    let tattoo = VisualQueryInterface::data_driven(&repo, &Tattoo::default(), &budget);
    let manual = VisualQueryInterface::manual(
        repo.node_labels().into_iter().collect(),
        repo.edge_labels().into_iter().collect(),
        vec![],
    );
    let costs = ActionCosts::default();

    let mut rows = Vec::new();
    for query_size in [4usize, 6, 8, 10] {
        let queries = sample_queries(
            &repo,
            &WorkloadParams {
                count: 15,
                sizes: vec![query_size],
                seed: 900 + query_size as u64,
            },
        );
        let t = evaluate_interface(&tattoo, &queries, &costs);
        let m = evaluate_interface(&manual, &queries, &costs);
        rows.push(Row {
            query_size,
            tattoo_steps: t.mean_steps,
            tattoo_time: t.mean_time,
            manual_steps: m.mean_steps,
            manual_time: m.mean_time,
            patterns_per_query: t.mean_patterns_used,
        });
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.query_size.to_string(),
                format!("{:.2}", r.tattoo_steps),
                format!("{:.1}", r.tattoo_time),
                format!("{:.2}", r.manual_steps),
                format!("{:.1}", r.manual_time),
                format!("{:.2}", r.patterns_per_query),
            ]
        })
        .collect();
    print_table(
        "E2: formulation on a 3000-node coauthorship network",
        &[
            "|Q|",
            "tattoo steps",
            "tattoo t",
            "man steps",
            "man t",
            "patterns/q",
        ],
        &table,
    );
    write_json("e2_formulation_network", &rows);

    for r in &rows {
        assert!(
            r.tattoo_steps <= r.manual_steps,
            "|Q|={}: tattoo {} > manual {}",
            r.query_size,
            r.tattoo_steps,
            r.manual_steps
        );
    }
}
