//! Shared support for the experiment harnesses.
//!
//! Every `exp_*` binary prints a human-readable table to stdout and
//! writes the same rows as JSON under `target/experiments/` so
//! EXPERIMENTS.md can be regenerated mechanically.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::Serialize;
use std::path::PathBuf;

/// Prints a fixed-width table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("== {title} ==");
    let widths: Vec<usize> = headers
        .iter()
        .enumerate()
        .map(|(i, h)| {
            rows.iter()
                .map(|r| r.get(i).map_or(0, |c| c.len()))
                .chain(std::iter::once(h.len()))
                .max()
                .unwrap_or(0)
        })
        .collect();
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .zip(widths.iter())
            .map(|(c, w)| format!("{c:>w$}"))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let headers: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    println!("{}", fmt_row(&headers));
    for r in rows {
        println!("{}", fmt_row(r));
    }
    println!();
}

/// Directory for machine-readable experiment outputs.
pub fn experiments_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/experiments");
    std::fs::create_dir_all(&dir).expect("create experiments dir");
    dir
}

/// Writes a serializable record as `target/experiments/<name>.json`.
pub fn write_json<T: Serialize>(name: &str, value: &T) {
    let path = experiments_dir().join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(value).expect("serializable");
    std::fs::write(&path, json).expect("write experiment json");
    println!("(wrote {})", path.display());
}

/// Milliseconds elapsed by `f`, with the result.
pub fn time_ms<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t0 = std::time::Instant::now();
    let out = f();
    (out, t0.elapsed().as_secs_f64() * 1e3)
}

/// Like [`time_ms`], but the measurement also lands in the
/// `vqi-observe` registry as a span named `name`, so the experiment's
/// reported number and the metrics snapshot come from the same clock.
pub fn timed_ms<T>(name: &str, f: impl FnOnce() -> T) -> (T, f64) {
    let (out, d) = vqi_observe::time(name, f);
    (out, d.as_secs_f64() * 1e3)
}

/// Turns on metrics recording for an experiment binary and clears any
/// leftovers, so each `exp_*` run starts from an empty registry.
pub fn enable_metrics() {
    vqi_observe::reset();
    vqi_observe::set_enabled(true);
}

/// Writes the current metrics snapshot as
/// `target/experiments/<name>_metrics.json` — the same JSON the CLI
/// emits under `--metrics=json`.
pub fn write_metrics_json(name: &str) {
    let path = experiments_dir().join(format!("{name}_metrics.json"));
    std::fs::write(&path, vqi_observe::snapshot().to_json()).expect("write metrics json");
    println!("(wrote {})", path.display());
}

/// Rows summarizing the kernel cache counters (`cache.<kernel>.hit` /
/// `.miss` / `.evict`) from the current metrics snapshot: one row per
/// kernel as `[kernel, hits, misses, evictions, hit rate]`. Empty when
/// no cache counter has fired (metrics disabled or cache untouched).
pub fn cache_stats_rows() -> Vec<Vec<String>> {
    let snapshot = vqi_observe::snapshot();
    let mut kernels: std::collections::BTreeMap<String, (u64, u64, u64)> = Default::default();
    for (name, &v) in &snapshot.counters {
        if let Some(rest) = name.strip_prefix("cache.") {
            if let Some((kernel, field)) = rest.rsplit_once('.') {
                let e = kernels.entry(kernel.to_string()).or_default();
                match field {
                    "hit" => e.0 = v,
                    "miss" => e.1 = v,
                    "evict" => e.2 = v,
                    _ => {}
                }
            }
        }
    }
    kernels
        .into_iter()
        .map(|(kernel, (hit, miss, evict))| {
            let total = hit + miss;
            let rate = if total == 0 {
                0.0
            } else {
                hit as f64 / total as f64
            };
            vec![
                kernel,
                hit.to_string(),
                miss.to_string(),
                evict.to_string(),
                format!("{:.1}%", rate * 100.0),
            ]
        })
        .collect()
}

/// Prints the kernel-cache hit-rate table; silent if no cache counters
/// were recorded.
pub fn print_cache_stats() {
    let rows = cache_stats_rows();
    if !rows.is_empty() {
        print_table(
            "kernel cache",
            &["kernel", "hits", "misses", "evictions", "hit rate"],
            &rows,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The vqi-observe registry is global; tests that reset it must not
    /// interleave.
    static METRICS_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn table_prints_without_panic() {
        print_table("t", &["a", "long-header"], &[vec!["1".into(), "2".into()]]);
    }

    #[test]
    fn timing_returns_result() {
        let (v, ms) = time_ms(|| 41 + 1);
        assert_eq!(v, 42);
        assert!(ms >= 0.0);
    }

    #[test]
    fn timed_ms_records_a_span() {
        let _guard = METRICS_LOCK.lock().unwrap();
        enable_metrics();
        let (v, ms) = timed_ms("benchtest.block", || 6 * 7);
        vqi_observe::set_enabled(false);
        assert_eq!(v, 42);
        assert!(ms >= 0.0);
        let s = vqi_observe::snapshot();
        assert!(s.spans.contains_key("benchtest.block"));
        write_metrics_json("benchtest");
        let text =
            std::fs::read_to_string(experiments_dir().join("benchtest_metrics.json")).unwrap();
        let parsed: serde_json::Value = serde_json::from_str(&text).unwrap();
        assert!(
            parsed["spans"]["benchtest.block"]["count"]
                .as_u64()
                .unwrap()
                >= 1
        );
        vqi_observe::reset();
    }

    #[test]
    fn cache_stats_rows_parse_counters() {
        let _guard = METRICS_LOCK.lock().unwrap();
        enable_metrics();
        vqi_observe::incr("cache.mcs.hit", 3);
        vqi_observe::incr("cache.mcs.miss", 1);
        vqi_observe::incr("cache.covers.miss", 2);
        vqi_observe::incr("cache.covers.evict", 1);
        vqi_observe::set_enabled(false);
        let rows = cache_stats_rows();
        vqi_observe::reset();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0][0], "covers");
        assert_eq!(rows[0][4], "0.0%");
        assert_eq!(rows[1][0], "mcs");
        assert_eq!(rows[1][1], "3");
        assert_eq!(rows[1][4], "75.0%");
    }

    #[test]
    fn json_write_round_trips() {
        write_json("selftest", &vec![1, 2, 3]);
        let text = std::fs::read_to_string(experiments_dir().join("selftest.json")).unwrap();
        let back: Vec<i32> = serde_json::from_str(&text).unwrap();
        assert_eq!(back, vec![1, 2, 3]);
    }
}
