//! Criterion benchmark of pattern maintenance: MIDAS batch updates vs
//! re-running CATAPULT from scratch (the comparison behind experiment
//! E4, at micro-benchmark precision).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use midas::{Midas, MidasConfig};
use std::hint::black_box;
use vqi_core::budget::PatternBudget;
use vqi_core::repo::{BatchUpdate, GraphCollection};

fn base_collection() -> GraphCollection {
    GraphCollection::new(vqi_datasets::aids_like(vqi_datasets::MoleculeParams {
        count: 60,
        seed: 21,
        ..Default::default()
    }))
}

fn drift_batch() -> Vec<vqi_graph::Graph> {
    (0..12)
        .map(|i| {
            if i % 2 == 0 {
                vqi_graph::generate::clique(4 + i % 2, 3, 0)
            } else {
                vqi_graph::generate::star(5 + i % 3, 4, 0)
            }
        })
        .collect()
}

fn bench_midas_update(c: &mut Criterion) {
    let budget = PatternBudget::new(5, 4, 7);
    let mut group = c.benchmark_group("maintenance");
    group.sample_size(10);
    group.bench_function("midas_batch_update", |b| {
        b.iter_batched(
            || Midas::bootstrap(base_collection(), budget, MidasConfig::default()),
            |mut m| {
                black_box(m.apply_update(BatchUpdate::adding(drift_batch())));
            },
            BatchSize::LargeInput,
        )
    });
    group.bench_function("catapult_rerun", |b| {
        // the from-scratch alternative on the post-update collection
        let mut col = base_collection();
        col.apply(BatchUpdate::adding(drift_batch()));
        b.iter(|| black_box(catapult::Catapult::default().run_with_state(&col, &budget)))
    });
    group.finish();
}

criterion_group!(benches, bench_midas_update);
criterion_main!(benches);
