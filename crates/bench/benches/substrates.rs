//! Criterion micro-benchmarks of the hot substrates: subgraph
//! isomorphism, truss decomposition, graphlet counting, canonical codes,
//! and graph closure.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::hint::black_box;
use vqi_graph::canon::canonical_code;
use vqi_graph::generate as gen;
use vqi_graph::graphlet::{count_graphlets, sample_graphlets};
use vqi_graph::iso::{count_embeddings, is_subgraph_isomorphic, MatchOptions};
use vqi_graph::truss::trussness;
use vqi_mining::closure::closure_of;

fn bench_subgraph_iso(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(1);
    let target = gen::barabasi_albert(500, 3, 0, &mut rng);
    let mut group = c.benchmark_group("subgraph_iso");
    for size in [3usize, 4, 5, 6] {
        let pattern = gen::chain(size, 0, 0);
        group.bench_with_input(BenchmarkId::new("chain_exists", size), &size, |b, _| {
            b.iter(|| {
                black_box(is_subgraph_isomorphic(
                    &pattern,
                    &target,
                    MatchOptions::default(),
                ))
            })
        });
    }
    let tri = gen::cycle(3, 0, 0);
    group.bench_function("triangle_count_capped", |b| {
        b.iter(|| {
            black_box(count_embeddings(
                &tri,
                &target,
                MatchOptions {
                    max_embeddings: 1000,
                    ..Default::default()
                },
            ))
        })
    });
    group.finish();
}

fn bench_truss(c: &mut Criterion) {
    let mut group = c.benchmark_group("truss");
    for nodes in [200usize, 500, 1000] {
        let mut rng = SmallRng::seed_from_u64(2);
        let g = gen::barabasi_albert(nodes, 4, 0, &mut rng);
        group.bench_with_input(BenchmarkId::new("trussness", nodes), &g, |b, g| {
            b.iter(|| black_box(trussness(g)))
        });
    }
    group.finish();
}

fn bench_graphlets(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(3);
    let g = gen::erdos_renyi(60, 0.1, 0, &mut rng);
    let mut group = c.benchmark_group("graphlets");
    group.bench_function("exact_esu_60n", |b| {
        b.iter(|| black_box(count_graphlets(&g)))
    });
    group.bench_function("rand_esu_60n_p05", |b| {
        let mut r = SmallRng::seed_from_u64(4);
        b.iter(|| black_box(sample_graphlets(&g, 0.5, &mut r)))
    });
    group.finish();
}

fn bench_canon(c: &mut Criterion) {
    let mut group = c.benchmark_group("canonical_code");
    for size in [5usize, 8, 12] {
        let g = gen::cycle(size, 1, 0);
        group.bench_with_input(BenchmarkId::new("cycle", size), &g, |b, g| {
            b.iter(|| black_box(canonical_code(g)))
        });
    }
    let k = gen::clique(10, 0, 0);
    group.bench_function("clique_10_twin_pruned", |b| {
        b.iter(|| black_box(canonical_code(&k)))
    });
    group.finish();
}

fn bench_closure(c: &mut Criterion) {
    let graphs: Vec<_> = (0..10).map(|i| gen::chain(8 + i % 4, 1, 0)).collect();
    let refs: Vec<&vqi_graph::Graph> = graphs.iter().collect();
    c.bench_function("closure_of_10_chains", |b| {
        b.iter(|| black_box(closure_of(&refs)))
    });
}

criterion_group!(
    benches,
    bench_subgraph_iso,
    bench_truss,
    bench_graphlets,
    bench_canon,
    bench_closure
);
criterion_main!(benches);
