//! Criterion benchmarks of the query-acceleration indices: brute-force
//! scan vs triple filter-verify vs closure-tree, on a molecule
//! collection.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use vqi_graph::generate::{chain, cycle};
use vqi_graph::iso::{is_subgraph_isomorphic, MatchOptions};
use vqi_graph::Graph;
use vqi_index::{ClosureTree, TripleIndex};

fn collection() -> Vec<Graph> {
    vqi_datasets::aids_like(vqi_datasets::MoleculeParams {
        count: 300,
        seed: 42,
        ..Default::default()
    })
}

fn queries() -> Vec<Graph> {
    vec![
        chain(4, 0, 0), // common carbon chain
        cycle(6, 0, 0), // benzene-like ring
        chain(3, 2, 0), // oxygen-bearing fragment
        cycle(5, 0, 1), // ring with a double bond
    ]
}

fn bench_indices(c: &mut Criterion) {
    let gs = collection();
    let qs = queries();
    let triple = TripleIndex::build(gs.iter().enumerate());
    let ctree = ClosureTree::bulk_load(gs.iter().enumerate(), 8);

    let mut group = c.benchmark_group("subgraph_search_300_molecules");
    group.sample_size(20);
    group.bench_function("brute_force", |b| {
        b.iter(|| {
            for q in &qs {
                let hits: Vec<usize> = gs
                    .iter()
                    .enumerate()
                    .filter(|(_, g)| is_subgraph_isomorphic(q, g, MatchOptions::with_wildcards()))
                    .map(|(i, _)| i)
                    .collect();
                black_box(hits);
            }
        })
    });
    group.bench_function("triple_filter_verify", |b| {
        b.iter(|| {
            for q in &qs {
                black_box(triple.search(q, |id| &gs[id]));
            }
        })
    });
    group.bench_function("closure_tree", |b| {
        b.iter(|| {
            for q in &qs {
                black_box(ctree.search(q, |id| &gs[id]));
            }
        })
    });
    group.finish();

    let mut build = c.benchmark_group("index_build_300_molecules");
    build.sample_size(10);
    build.bench_function("triple", |b| {
        b.iter(|| black_box(TripleIndex::build(gs.iter().enumerate())))
    });
    build.bench_function("ctree_fanout8", |b| {
        b.iter(|| black_box(ClosureTree::bulk_load(gs.iter().enumerate(), 8)))
    });
    build.finish();
}

criterion_group!(benches, bench_indices);
criterion_main!(benches);
