//! Criterion benchmarks of end-to-end pattern selection: CATAPULT on
//! collections, TATTOO on networks, the modular pipeline, and the random
//! baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use vqi_core::budget::PatternBudget;
use vqi_core::repo::GraphRepository;
use vqi_core::selector::{PatternSelector, RandomSelector};

fn bench_catapult(c: &mut Criterion) {
    let mut group = c.benchmark_group("catapult");
    group.sample_size(10);
    for count in [30usize, 60] {
        let repo =
            GraphRepository::collection(vqi_datasets::aids_like(vqi_datasets::MoleculeParams {
                count,
                seed: 7,
                ..Default::default()
            }));
        let budget = PatternBudget::new(6, 4, 7);
        group.bench_with_input(BenchmarkId::new("select", count), &repo, |b, repo| {
            b.iter(|| black_box(catapult::Catapult::default().select(repo, &budget)))
        });
    }
    group.finish();
}

fn bench_tattoo(c: &mut Criterion) {
    let mut group = c.benchmark_group("tattoo");
    group.sample_size(10);
    for nodes in [300usize, 800] {
        let repo = GraphRepository::network(vqi_datasets::dblp_like(nodes, 9));
        let budget = PatternBudget::new(6, 4, 6);
        group.bench_with_input(BenchmarkId::new("select", nodes), &repo, |b, repo| {
            b.iter(|| black_box(tattoo::Tattoo::default().select(repo, &budget)))
        });
    }
    group.finish();
}

fn bench_modular_and_random(c: &mut Criterion) {
    let repo = GraphRepository::collection(vqi_datasets::aids_like(vqi_datasets::MoleculeParams {
        count: 40,
        seed: 11,
        ..Default::default()
    }));
    let budget = PatternBudget::new(6, 4, 7);
    let mut group = c.benchmark_group("baselines");
    group.sample_size(10);
    group.bench_function("modular_standard", |b| {
        b.iter(|| black_box(vqi_modular::ModularPipeline::standard().select(&repo, &budget)))
    });
    group.bench_function("random", |b| {
        b.iter(|| black_box(RandomSelector::new(3).select(&repo, &budget)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_catapult,
    bench_tattoo,
    bench_modular_and_random
);
criterion_main!(benches);
