//! MIDAS state and the batch-maintenance procedure.

use crate::swap::{multi_scan_swap, SwapCandidate, SwapStats};
use catapult::candidates::{generate_candidates, WalkParams};
use catapult::pipeline::{Catapult, CatapultConfig};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::Serialize;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use vqi_core::bitset::BitSet;
use vqi_core::budget::PatternBudget;
use vqi_core::ctrl::{run_stage, Budget, Degradation, PipelineOutcome};
use vqi_core::pattern::PatternSet;
use vqi_core::repo::{BatchUpdate, GraphCollection};
use vqi_core::score::{covers_cached_indexed, QualityWeights};
use vqi_graph::graphlet::{
    euclidean_distance, sample_graphlets_seeded_ctrl, GraphletCounts, GRAPHLET_CLASSES,
};
use vqi_graph::index::GraphIndex;
use vqi_graph::par;
use vqi_graph::Graph;
use vqi_mining::closure::ClusterSummaryGraph;
use vqi_mining::fct::FctIndex;
use vqi_mining::features::{cosine_distance, FeatureSpace};
use vqi_mining::fst::MineParams;
use vqi_runtime::error::panic_reason;
use vqi_runtime::{fault, VqiError};
use vqi_timeseries::TimeSeries;

/// MIDAS configuration.
#[derive(Debug, Clone, Copy)]
pub struct MidasConfig {
    /// GFD Euclidean-distance threshold separating minor from major
    /// modifications.
    pub drift_threshold: f64,
    /// RAND-ESU retention for GFD drift detection: per-depth descent
    /// probability of the seeded graphlet sampler. At the default `1.0`
    /// the sampler never consults its RNG and the GFD is bit-identical
    /// to the exact distribution; values below 1.0 trade drift accuracy
    /// for faster maintenance on large collections. The sample is a pure
    /// function of `(collection, gfd_retention, seed)` at any thread
    /// count.
    pub gfd_retention: f64,
    /// Maximum feature distance at which a new graph joins an existing
    /// cluster; farther graphs found new clusters.
    pub assign_threshold: f64,
    /// FCT mining parameters (support is absolute).
    pub mine: MineParams,
    /// Candidate-walk parameters for major modifications.
    pub walks: WalkParams,
    /// Swap scans per maintenance pass.
    pub swap_scans: usize,
    /// Score weights (must match the bootstrap selection's weights).
    pub weights: QualityWeights,
    /// RNG seed.
    pub seed: u64,
    /// Number of recent batches whose per-batch GFD drifts are summed
    /// into the sliding-window drift signal that decides minor vs
    /// major. At the default `1` the decision depends on the current
    /// batch alone (the classic MIDAS rule); larger windows let slow
    /// structural shifts — each batch individually below
    /// `drift_threshold` — still escalate to a major modification once
    /// their accumulated drift crosses the threshold. The window is
    /// cleared after every major modification (maintenance re-baselines
    /// the stream) and failed censuses contribute nothing.
    pub drift_window: usize,
}

impl Default for MidasConfig {
    fn default() -> Self {
        MidasConfig {
            drift_threshold: 0.05,
            gfd_retention: 1.0,
            assign_threshold: 0.4,
            mine: MineParams {
                min_support: 2,
                max_nodes: 4,
            },
            walks: WalkParams::default(),
            swap_scans: 8,
            weights: QualityWeights::default(),
            seed: 0x314DA5,
            drift_window: 1,
        }
    }
}

/// Kind of modification a batch caused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Modification {
    /// GFD drift below threshold: clusters/CSGs refreshed, patterns kept.
    Minor,
    /// GFD drift at/above threshold: pattern maintenance ran.
    Major,
}

/// How the GFD census of a maintenance pass was obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum CensusMode {
    /// Per-graph counts of surviving graphs were reused from the cache;
    /// only graphs added by the batch were counted — O(delta) work.
    Delta,
    /// Every live graph was counted from scratch (cold cache, e.g. the
    /// first census after growing from an empty collection).
    Full,
    /// The census failed (deadline, tick quota, cancellation, or an
    /// injected panic); the previous GFD was kept and no drift was
    /// measured for this batch.
    Skipped,
}

/// Report of one maintenance pass.
#[derive(Debug, Clone, Serialize)]
pub struct MaintenanceReport {
    /// Minor or major.
    pub modification: Modification,
    /// Euclidean distance between the old and new GFDs.
    pub gfd_distance: f64,
    /// Number of accepted pattern swaps.
    pub swaps: usize,
    /// Candidates considered by the swapping strategy.
    pub candidates_considered: usize,
    /// Candidates removed by coverage-based pruning.
    pub candidates_pruned: usize,
    /// Clusters whose membership changed (CSG rebuilt).
    pub clusters_touched: usize,
    /// Sliding-window drift signal: the sum of the last
    /// [`MidasConfig::drift_window`] per-batch GFD drifts (this batch
    /// included). This, not `gfd_distance`, is what the minor/major
    /// decision compares against `drift_threshold`.
    pub windowed_drift: f64,
    /// How the census behind `gfd_distance` was obtained.
    pub census_mode: CensusMode,
    /// Graphs whose graphlet counts were computed fresh this pass.
    pub census_computed: usize,
    /// Graphs whose cached graphlet counts were reused.
    pub census_reused: usize,
}

/// One maintained cluster.
#[derive(Debug, Clone)]
struct ClusterInfo {
    /// Live member graph ids.
    members: Vec<usize>,
    /// Graph id of the representative (medoid).
    medoid: usize,
}

/// The MIDAS maintainer: owns the collection snapshot and all derived
/// state.
pub struct Midas {
    config: MidasConfig,
    budget: PatternBudget,
    /// The maintained repository.
    pub collection: GraphCollection,
    fct: FctIndex,
    feature_space: FeatureSpace,
    clusters: Vec<ClusterInfo>,
    csgs: Vec<Option<ClusterSummaryGraph>>,
    /// The maintained canned pattern set.
    pub patterns: PatternSet,
    pattern_bitsets: Vec<BitSet>,
    gfd: [f64; GRAPHLET_CLASSES],
    /// Per-graph graphlet counts keyed by collection id. Graph ids are
    /// never recycled by [`GraphCollection::apply`], so an entry stays
    /// valid for as long as its graph lives; dead entries are pruned on
    /// every successful census.
    census_cache: HashMap<usize, GraphletCounts>,
    /// Per-batch GFD drifts of recent successful censuses, oldest
    /// first; the sliding-window signal sums its `drift_window` tail.
    drift_series: Vec<f64>,
}

impl Midas {
    /// Bootstraps MIDAS from an initial collection: runs a CATAPULT
    /// selection (with FCT features) and derives all maintainable state.
    pub fn bootstrap(
        collection: GraphCollection,
        budget: PatternBudget,
        config: MidasConfig,
    ) -> Self {
        // initial selection via CATAPULT
        let cat = Catapult::new(CatapultConfig {
            max_feature_nodes: config.mine.max_nodes,
            seed: config.seed,
            weights: config.weights,
            walks: config.walks,
            ..Default::default()
        });
        let (patterns, state) = cat.run_with_state(&collection, &budget);

        // FCT index over the same collection
        let graphs: Vec<Graph> = state
            .graph_ids
            .iter()
            .map(|&id| collection.get(id).expect("live").clone())
            .collect();
        let fct = FctIndex::build(&graphs, config.mine);
        let feature_space = FeatureSpace::new(
            fct.closed_trees()
                .iter()
                .map(|t| t.tree.tree.clone())
                .collect(),
        );

        // clusters from the CATAPULT state
        let clusters: Vec<ClusterInfo> = state
            .clustering
            .clusters()
            .into_iter()
            .filter(|m| !m.is_empty())
            .map(|members| {
                let ids: Vec<usize> = members.iter().map(|&pos| state.graph_ids[pos]).collect();
                ClusterInfo {
                    medoid: ids[0],
                    members: ids,
                }
            })
            .collect();
        let csgs: Vec<Option<ClusterSummaryGraph>> = clusters
            .iter()
            .map(|c| ClusterSummaryGraph::build(&c.members, |id| collection.get(id).expect("live")))
            .collect();

        let mut census_cache = HashMap::new();
        let (gfd, _, _) = Self::collection_gfd_cached(
            &mut census_cache,
            &collection,
            &config,
            &Budget::unlimited(),
        )
        .expect("unlimited-budget census cannot fail");
        let pattern_bitsets = Self::bitsets_for(&patterns, &collection);

        Midas {
            config,
            budget,
            collection,
            fct,
            feature_space,
            clusters,
            csgs,
            patterns,
            pattern_bitsets,
            gfd,
            census_cache,
            drift_series: Vec::new(),
        }
    }

    /// Coverage bitsets of every pattern over the live collection. Runs
    /// through the kernel cache: graphs surviving a batch keep their
    /// cache tokens, so only (pattern, new graph) pairs cost a search.
    fn bitsets_for(patterns: &PatternSet, collection: &GraphCollection) -> Vec<BitSet> {
        let ids = collection.ids();
        // one label index per live graph, shared across all patterns
        let graphs: Vec<&Graph> = ids
            .iter()
            .map(|&id| collection.get(id).expect("live"))
            .collect();
        let indexes = GraphIndex::build_many(&graphs);
        par::map(patterns.patterns(), |p| {
            let mut bits = BitSet::new(ids.len());
            for (pos, &id) in ids.iter().enumerate() {
                let g = collection.get(id).expect("live");
                let token = collection.token(id).expect("live");
                if covers_cached_indexed(&p.graph, &p.code, g, token, &indexes[pos]) {
                    bits.set(pos);
                }
            }
            bits
        })
    }

    /// The collection's GFD via the per-graph census cache: only graphs
    /// with no cached counts (the batch's additions, or everything on a
    /// cold cache) are counted, in parallel, and live per-graph counts
    /// are folded in ascending id order — the same order
    /// `collection_distribution_sampled` folds in, and each graph's
    /// census is the same pure function of `(graph, gfd_retention,
    /// seed)`, so the cached distribution is bit-identical to a full
    /// recompute at any thread count and any retention.
    ///
    /// Returns `(distribution, computed, reused)`. On error (budget
    /// trip inside the graphlet kernel — first failing id wins,
    /// deterministically) the cache is left exactly as it was: entries
    /// are inserted only when every missing graph counted successfully,
    /// so a failed census can never leak partial state into the next
    /// pass. Dead ids are pruned on success; ids are never recycled by
    /// [`GraphCollection::apply`], so stale survivors of a failed pass
    /// are a memory concern only, never a correctness one.
    fn collection_gfd_cached(
        cache: &mut HashMap<usize, GraphletCounts>,
        collection: &GraphCollection,
        config: &MidasConfig,
        ctrl: &Budget,
    ) -> Result<([f64; GRAPHLET_CLASSES], usize, usize), VqiError> {
        ctrl.check("kernel.graphlet")?;
        let _s = vqi_observe::span("midas.census");
        let ids = collection.ids();
        let missing: Vec<usize> = ids
            .iter()
            .copied()
            .filter(|id| !cache.contains_key(id))
            .collect();
        let computed = missing.len();
        let reused = ids.len() - computed;
        vqi_observe::incr("midas.census.computed", computed as u64);
        vqi_observe::incr("midas.census.reused", reused as u64);
        let fresh: Vec<Result<GraphletCounts, VqiError>> = par::map(&missing, |&id| {
            let g = collection.get(id).expect("live id");
            sample_graphlets_seeded_ctrl(g, config.gfd_retention, config.seed, ctrl)
        });
        let mut counted = Vec::with_capacity(computed);
        for r in fresh {
            counted.push(r?);
        }
        cache.retain(|id, _| ids.binary_search(id).is_ok());
        for (id, c) in missing.into_iter().zip(counted) {
            cache.insert(id, c);
        }
        let mut total = GraphletCounts::default();
        for id in &ids {
            total.add(&cache[id]);
        }
        Ok((total.distribution(), computed, reused))
    }

    /// The current graphlet frequency distribution.
    pub fn gfd(&self) -> [f64; GRAPHLET_CLASSES] {
        self.gfd
    }

    /// Number of maintained clusters.
    pub fn cluster_count(&self) -> usize {
        self.clusters.len()
    }

    /// Applies a batch update to the repository and maintains the pattern
    /// set per the MIDAS procedure.
    pub fn apply_update(&mut self, update: BatchUpdate) -> MaintenanceReport {
        let mut deg = Degradation::new();
        self.apply_update_impl(update, &Budget::unlimited(), &mut deg)
            // unreachable with an unlimited, non-fail-fast budget; a
            // zeroed minor report keeps the fallback panic-free
            .unwrap_or(MaintenanceReport {
                modification: Modification::Minor,
                gfd_distance: 0.0,
                swaps: 0,
                candidates_considered: 0,
                candidates_pruned: 0,
                clusters_touched: 0,
                windowed_drift: 0.0,
                census_mode: CensusMode::Skipped,
                census_computed: 0,
                census_reused: 0,
            })
    }

    /// Budget-aware maintenance: identical to [`Self::apply_update`]
    /// when nothing trips, an anytime outcome otherwise. Stages that
    /// fail (deadline, tick quota, cancellation, injected or real
    /// panics) are skipped with the previous state retained — in
    /// particular a failed GFD census keeps the old distribution, so
    /// the accumulated drift is seen by the next successful census —
    /// and the outcome reports which stages were cut. The collection
    /// itself always reflects the batch, and `patterns` /
    /// `pattern_bitsets` always stay mutually consistent. `Err` is
    /// returned only under [`Budget::with_fail_fast`].
    pub fn apply_update_ctrl(
        &mut self,
        update: BatchUpdate,
        ctrl: &Budget,
    ) -> Result<PipelineOutcome<MaintenanceReport>, VqiError> {
        let mut deg = Degradation::new();
        let report = self.apply_update_impl(update, ctrl, &mut deg)?;
        Ok(deg.finish(report))
    }

    fn apply_update_impl(
        &mut self,
        update: BatchUpdate,
        ctrl: &Budget,
        deg: &mut Degradation,
    ) -> Result<MaintenanceReport, VqiError> {
        let _run = vqi_observe::run("midas.apply_update");
        let removed = update.removals.clone();
        let added_graphs = update.additions.clone();
        let new_ids = self.collection.apply(update);
        vqi_observe::incr("midas.update.added", new_ids.len() as u64);
        vqi_observe::incr("midas.update.removed", removed.len() as u64);

        // 1. FCT maintenance. On failure the pre-batch feature space is
        // kept: addition assignment below still works, just against
        // stale features.
        if let Err(e) = run_stage(ctrl, "midas.fct", || {
            fault::maybe_panic("midas.fct", 0);
            let _s = vqi_observe::span("midas.fct_maintain");
            let added_pairs: Vec<(usize, &Graph)> = new_ids
                .iter()
                .map(|&id| (id, self.collection.get(id).expect("just added")))
                .collect();
            let collection_ref = &self.collection;
            self.fct.apply_batch(&added_pairs, &removed, |id| {
                collection_ref.get(id).expect("live id")
            });
            self.feature_space = FeatureSpace::new(
                self.fct
                    .closed_trees()
                    .iter()
                    .map(|t| t.tree.tree.clone())
                    .collect(),
            );
        }) {
            deg.absorb(ctrl, e)?;
        }

        // 2. cluster maintenance: drop removed members, assign additions
        let cluster_span = vqi_observe::span("midas.cluster_maintain");
        let mut touched: Vec<usize> = Vec::new();
        for (ci, cluster) in self.clusters.iter_mut().enumerate() {
            let before = cluster.members.len();
            cluster.members.retain(|m| !removed.contains(m));
            if cluster.members.len() != before {
                touched.push(ci);
                if !cluster.members.contains(&cluster.medoid) {
                    if let Some(&first) = cluster.members.first() {
                        cluster.medoid = first;
                    }
                }
            }
        }
        // Drop emptied clusters while keeping `csgs` and `touched`
        // aligned with the surviving indices. A bare `retain` here used
        // to shift every cluster after a removed one, so later CSG
        // rebuilds (and the addition assignments below) indexed the
        // wrong clusters.
        if self.clusters.iter().any(|c| c.members.is_empty()) {
            let mut old_to_new = vec![usize::MAX; self.clusters.len()];
            let mut kept = 0usize;
            for (old, c) in self.clusters.iter().enumerate() {
                if !c.members.is_empty() {
                    old_to_new[old] = kept;
                    kept += 1;
                }
            }
            self.clusters.retain(|c| !c.members.is_empty());
            let old_csgs = std::mem::take(&mut self.csgs);
            self.csgs = vec![None; kept];
            for (old, csg) in old_csgs.into_iter().enumerate() {
                let new = old_to_new.get(old).copied().unwrap_or(usize::MAX);
                if new != usize::MAX {
                    self.csgs[new] = csg;
                }
            }
            touched = touched
                .into_iter()
                .filter_map(|old| old_to_new.get(old).copied())
                .filter(|&new| new != usize::MAX)
                .collect();
        }

        for (&id, g) in new_ids.iter().zip(added_graphs.iter()) {
            let vec_new = self.feature_space.vector(g);
            let assigned = self
                .clusters
                .iter()
                .enumerate()
                .map(|(ci, c)| {
                    let medoid_graph = self.collection.get(c.medoid).expect("live medoid");
                    let vec_medoid = self.feature_space.vector(medoid_graph);
                    (ci, cosine_distance(&vec_new, &vec_medoid))
                })
                .min_by(|a, b| a.1.total_cmp(&b.1));
            match assigned {
                Some((ci, d)) if d <= self.config.assign_threshold => {
                    self.clusters[ci].members.push(id);
                    touched.push(ci);
                }
                _ => {
                    self.clusters.push(ClusterInfo {
                        members: vec![id],
                        medoid: id,
                    });
                    touched.push(self.clusters.len() - 1);
                }
            }
        }
        touched.sort_unstable();
        touched.dedup();
        drop(cluster_span);
        vqi_observe::incr("midas.clusters.touched", touched.len() as u64);

        // 3. rebuild CSGs of touched clusters (and resize the csg list).
        // Each build is panic-isolated per cluster: a lost build leaves
        // `None`, which the sync pass below retries once; a cluster
        // whose CSG stays `None` simply contributes no candidates.
        let csg_span = vqi_observe::span("midas.csg_rebuild");
        self.csgs.resize(self.clusters.len(), None);
        self.csgs.truncate(self.clusters.len());
        let collection_ref = &self.collection;
        let mut csg_cut = false;
        for &ci in &touched {
            if ci >= self.clusters.len() {
                continue;
            }
            if let Err(e) = ctrl.check("midas.csg") {
                deg.absorb(ctrl, e)?;
                csg_cut = true;
                break;
            }
            let members = &self.clusters[ci].members;
            match catch_unwind(AssertUnwindSafe(|| {
                fault::maybe_panic("midas.csg", ci as u64);
                ClusterSummaryGraph::build(members, |id| collection_ref.get(id).expect("live id"))
            })) {
                Ok(csg) => self.csgs[ci] = csg,
                Err(payload) => {
                    self.csgs[ci] = None;
                    deg.absorb(
                        ctrl,
                        VqiError::Panic {
                            stage: "midas.csg".into(),
                            reason: panic_reason(payload.as_ref()),
                        },
                    )?;
                }
            }
        }
        // clusters may have shrunk: rebuild any CSG now out of sync
        // (this pass also retries builds the loop above lost to a panic)
        if !csg_cut {
            for (ci, c) in self.clusters.iter().enumerate() {
                if self.csgs.get(ci).is_some_and(|csg| csg.is_none()) {
                    match catch_unwind(AssertUnwindSafe(|| {
                        fault::maybe_panic("midas.csg", ci as u64);
                        ClusterSummaryGraph::build(&c.members, |id| {
                            collection_ref.get(id).expect("live id")
                        })
                    })) {
                        Ok(csg) => self.csgs[ci] = csg,
                        Err(payload) => {
                            deg.absorb(
                                ctrl,
                                VqiError::Panic {
                                    stage: "midas.csg".into(),
                                    reason: panic_reason(payload.as_ref()),
                                },
                            )?;
                        }
                    }
                }
            }
        }
        drop(csg_span);

        // 4. GFD drift decides minor vs major. The census runs through
        // the per-graph cache (O(delta): only the batch's additions are
        // counted) and a failed census keeps the previous distribution
        // and reports no measured drift: pattern maintenance is skipped
        // for this batch, and the next successful census sees the
        // accumulated drift instead. The decision compares the
        // *windowed* drift — the sum of the last `drift_window`
        // per-batch drifts — so slow shifts spread across batches still
        // escalate instead of being re-baselined away each pass.
        let gfd_span = vqi_observe::span("midas.gfd_drift");
        let (cache, collection, config) = (&mut self.census_cache, &self.collection, &self.config);
        let census = run_stage(ctrl, "midas.gfd", || {
            fault::maybe_panic("midas.gfd", 0);
            Self::collection_gfd_cached(cache, collection, config, ctrl)
        })
        .and_then(|r| r);
        let (gfd_distance, windowed_drift, census_mode, census_computed, census_reused) =
            match census {
                Ok((new_gfd, computed, reused)) => {
                    let d = euclidean_distance(&self.gfd, &new_gfd);
                    self.gfd = new_gfd;
                    let w = self.config.drift_window.max(1);
                    self.drift_series.push(d);
                    if self.drift_series.len() > 4 * w {
                        let cut = self.drift_series.len() - w;
                        self.drift_series.drain(..cut);
                    }
                    let windowed = TimeSeries::new(self.drift_series.clone()).tail_sum(w);
                    let mode = if reused > 0 {
                        CensusMode::Delta
                    } else {
                        CensusMode::Full
                    };
                    (d, windowed, mode, computed, reused)
                }
                Err(e) => {
                    deg.absorb(ctrl, e)?;
                    (0.0, 0.0, CensusMode::Skipped, 0, 0)
                }
            };
        drop(gfd_span);
        vqi_observe::gauge_set("midas.gfd_distance_e6", (gfd_distance * 1e6) as i64);
        vqi_observe::gauge_set("midas.windowed_drift_e6", (windowed_drift * 1e6) as i64);

        // bitsets must reflect the updated collection in either case
        self.pattern_bitsets = Self::bitsets_for(&self.patterns, &self.collection);

        if windowed_drift < self.config.drift_threshold {
            vqi_observe::incr("midas.drift.minor", 1);
            return Ok(MaintenanceReport {
                modification: Modification::Minor,
                gfd_distance,
                swaps: 0,
                candidates_considered: 0,
                candidates_pruned: 0,
                clusters_touched: touched.len(),
                windowed_drift,
                census_mode,
                census_computed,
                census_reused,
            });
        }

        vqi_observe::incr("midas.drift.major", 1);
        // maintenance acts on the accumulated drift: re-baseline the
        // sliding window so the next batches measure fresh drift
        self.drift_series.clear();

        // 5. major: candidates from touched CSGs, then multi-scan
        // swapping. A lost candidate stage degrades to an empty swap
        // pool, so the swap below becomes a no-op and the stale
        // patterns are kept.
        let ids = self.collection.ids();
        let swap_cands = match run_stage(ctrl, "midas.candidates", || {
            fault::maybe_panic("midas.candidates", 0);
            let _s = vqi_observe::span("midas.candidates");
            let touched_csgs: Vec<ClusterSummaryGraph> = touched
                .iter()
                .filter_map(|&ci| self.csgs.get(ci).and_then(|c| c.clone()))
                .collect();
            let mut rng = SmallRng::seed_from_u64(self.config.seed ^ 0x5A5A);
            let walk_cands =
                generate_candidates(&touched_csgs, &self.budget, self.config.walks, &mut rng);
            let live_graphs: Vec<&Graph> = ids
                .iter()
                .map(|&id| collection_ref.get(id).expect("live"))
                .collect();
            let indexes = GraphIndex::build_many(&live_graphs);
            let coverages: Vec<Option<BitSet>> = par::map(&walk_cands, |c| {
                let mut coverage = BitSet::new(ids.len());
                for (pos, &id) in ids.iter().enumerate() {
                    let g = collection_ref.get(id).expect("live");
                    let token = collection_ref.token(id).expect("live");
                    if covers_cached_indexed(&c.graph, &c.code, g, token, &indexes[pos]) {
                        coverage.set(pos);
                    }
                }
                coverage.any().then_some(coverage)
            });
            walk_cands
                .into_iter()
                .zip(coverages)
                .filter_map(|(c, coverage)| {
                    Some(SwapCandidate {
                        graph: c.graph,
                        coverage: coverage?,
                    })
                })
                .collect::<Vec<SwapCandidate>>()
        }) {
            Ok(cands) => cands,
            Err(e) => {
                deg.absorb(ctrl, e)?;
                Vec::new()
            }
        };
        vqi_observe::incr("midas.candidates.viable", swap_cands.len() as u64);

        // The swap mutates `patterns` / `pattern_bitsets` in place and
        // is not re-entrant, so the budget gates it up front instead of
        // unwinding it mid-flight.
        let gate = ctrl.check("midas.swap").and_then(|()| {
            if fault::maybe_timeout("midas.swap", 0) {
                Err(VqiError::DeadlineExceeded {
                    stage: "midas.swap".into(),
                })
            } else {
                Ok(())
            }
        });
        let stats: SwapStats = match gate {
            Ok(()) => {
                let _s = vqi_observe::span("midas.swap");
                multi_scan_swap(
                    &mut self.patterns,
                    &mut self.pattern_bitsets,
                    swap_cands,
                    ids.len(),
                    self.config.swap_scans,
                    self.config.weights,
                )
            }
            Err(e) => {
                deg.absorb(ctrl, e)?;
                SwapStats::default()
            }
        };
        vqi_observe::incr("midas.swap.accepted", stats.swaps as u64);
        vqi_observe::incr("midas.swap.considered", stats.considered as u64);
        vqi_observe::incr("midas.swap.pruned", stats.pruned as u64);
        vqi_observe::incr("midas.swap.scans", stats.scans as u64);

        Ok(MaintenanceReport {
            modification: Modification::Major,
            gfd_distance,
            swaps: stats.swaps,
            candidates_considered: stats.considered,
            candidates_pruned: stats.pruned,
            clusters_touched: touched.len(),
            windowed_drift,
            census_mode,
            census_computed,
            census_reused,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vqi_core::repo::GraphRepository;
    use vqi_core::score::evaluate;
    use vqi_graph::generate::{chain, clique, cycle, star};

    fn initial_graphs() -> Vec<Graph> {
        let mut v = Vec::new();
        for i in 0..5 {
            v.push(chain(5 + i % 2, 1, 0));
            v.push(cycle(5 + i % 2, 2, 0));
        }
        v
    }

    fn budget() -> PatternBudget {
        PatternBudget::new(4, 4, 6)
    }

    #[test]
    fn bootstrap_builds_state() {
        let _guard = crate::fault_test_lock();
        let m = Midas::bootstrap(
            GraphCollection::new(initial_graphs()),
            budget(),
            MidasConfig::default(),
        );
        assert!(m.cluster_count() > 0);
        assert!(!m.patterns.is_empty());
        assert_eq!(m.pattern_bitsets.len(), m.patterns.len());
        let sum: f64 = m.gfd().iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn small_batch_is_minor() {
        let _guard = crate::fault_test_lock();
        let mut m = Midas::bootstrap(
            GraphCollection::new(initial_graphs()),
            budget(),
            MidasConfig::default(),
        );
        // one more chain: structurally nothing new
        let report = m.apply_update(BatchUpdate::adding(vec![chain(5, 1, 0)]));
        assert_eq!(report.modification, Modification::Minor);
        assert_eq!(report.swaps, 0);
    }

    #[test]
    fn structural_shift_is_major() {
        let _guard = crate::fault_test_lock();
        let mut m = Midas::bootstrap(
            GraphCollection::new(initial_graphs()),
            budget(),
            MidasConfig::default(),
        );
        // flood the repository with cliques and stars: GFD shifts hard
        let mut batch = Vec::new();
        for _ in 0..10 {
            batch.push(clique(5, 3, 0));
            batch.push(star(6, 4, 0));
        }
        let report = m.apply_update(BatchUpdate::adding(batch));
        assert_eq!(report.modification, Modification::Major);
    }

    #[test]
    fn quality_never_decreases_on_major_update() {
        let _guard = crate::fault_test_lock();
        let mut m = Midas::bootstrap(
            GraphCollection::new(initial_graphs()),
            budget(),
            MidasConfig::default(),
        );
        let stale = m.patterns.clone();
        let mut batch = Vec::new();
        for i in 0..12 {
            batch.push(clique(4 + i % 2, 3, 0));
            batch.push(star(5 + i % 3, 4, 0));
        }
        let report = m.apply_update(BatchUpdate::adding(batch));
        assert_eq!(report.modification, Modification::Major);
        let repo = GraphRepository::Collection(m.collection.clone());
        let w = m.config.weights;
        let stale_q = evaluate(&stale, &repo, w);
        let fresh_q = evaluate(&m.patterns, &repo, w);
        assert!(
            fresh_q.score >= stale_q.score - 1e-9,
            "maintained {:.4} < stale {:.4}",
            fresh_q.score,
            stale_q.score
        );
    }

    #[test]
    fn bootstrap_empty_then_grow() {
        let _guard = crate::fault_test_lock();
        let mut m = Midas::bootstrap(
            GraphCollection::new(vec![]),
            budget(),
            MidasConfig::default(),
        );
        assert_eq!(m.cluster_count(), 0);
        assert!(m.patterns.is_empty());
        // growing from empty assigns everything to fresh clusters
        let report = m.apply_update(BatchUpdate::adding(vec![
            chain(5, 1, 0),
            chain(6, 1, 0),
            cycle(5, 2, 0),
        ]));
        assert_eq!(m.collection.len(), 3);
        assert!(m.cluster_count() > 0);
        assert!(report.clusters_touched > 0);
    }

    #[test]
    fn removals_update_clusters() {
        let _guard = crate::fault_test_lock();
        let mut m = Midas::bootstrap(
            GraphCollection::new(initial_graphs()),
            budget(),
            MidasConfig::default(),
        );
        let before = m.collection.len();
        let report = m.apply_update(BatchUpdate::removing(vec![0, 2]));
        assert_eq!(m.collection.len(), before - 2);
        assert!(report.clusters_touched > 0);
    }

    #[test]
    fn maintenance_is_identical_across_thread_counts() {
        let _guard = crate::fault_test_lock();
        use vqi_graph::canon::CanonicalCode;
        let run_at = |cap: usize| -> (Vec<CanonicalCode>, [f64; GRAPHLET_CLASSES]) {
            par::set_thread_cap(cap);
            let mut m = Midas::bootstrap(
                GraphCollection::new(initial_graphs()),
                budget(),
                MidasConfig::default(),
            );
            let mut batch = Vec::new();
            for _ in 0..10 {
                batch.push(clique(5, 3, 0));
                batch.push(star(6, 4, 0));
            }
            let report = m.apply_update(BatchUpdate::adding(batch));
            assert_eq!(report.modification, Modification::Major);
            par::set_thread_cap(0);
            let mut codes: Vec<CanonicalCode> = m
                .patterns
                .patterns()
                .iter()
                .map(|p| p.code.clone())
                .collect();
            codes.sort();
            (codes, m.gfd())
        };
        let one = run_at(1);
        assert!(!one.0.is_empty());
        assert_eq!(one, run_at(2), "cap 2 changed maintenance results");
        assert_eq!(one, run_at(4), "cap 4 changed maintenance results");
    }

    #[test]
    fn observability_is_identical_across_thread_counts() {
        let _guard = crate::fault_test_lock();
        let maintain = || {
            let mut m = Midas::bootstrap(
                GraphCollection::new(initial_graphs()),
                budget(),
                MidasConfig::default(),
            );
            let mut batch = Vec::new();
            for _ in 0..10 {
                batch.push(clique(5, 3, 0));
                batch.push(star(6, 4, 0));
            }
            m.apply_update(BatchUpdate::adding(batch));
        };
        // warm-up fills the kernel caches so every measured run sees
        // the same cache-hit pattern
        maintain();
        let one = observed_aggregates(1, false, &maintain);
        assert!(!one.0.is_empty(), "no spans recorded");
        assert!(one.1.values().sum::<u64>() > 0, "no journal events");
        assert_eq!(
            one,
            observed_aggregates(2, false, &maintain),
            "cap 2 changed the observability output"
        );
        assert_eq!(
            one,
            observed_aggregates(4, false, &maintain),
            "cap 4 changed the observability output"
        );
        assert_eq!(
            one,
            observed_aggregates(0, true, &maintain),
            "sequential toggle changed the observability output"
        );
    }

    /// Runs `work` with metrics and the trace journal armed under the
    /// given thread cap (or the sequential toggle) and returns the
    /// order-normalized aggregates that must be thread-count invariant:
    /// per-name span invocation counts and the journal event multiset.
    /// Durations and `kernel.par.*` dispatch counters legitimately vary
    /// with the worker count and are deliberately excluded.
    fn observed_aggregates(
        cap: usize,
        sequential: bool,
        work: impl Fn(),
    ) -> (Vec<(String, u64)>, std::collections::BTreeMap<String, u64>) {
        if sequential {
            par::set_parallel_enabled(false);
        } else {
            par::set_thread_cap(cap);
        }
        vqi_observe::reset();
        vqi_observe::set_enabled(true);
        vqi_observe::set_journal_enabled(true);
        vqi_observe::journal_reset();
        work();
        let events = vqi_observe::journal_events();
        let multiset = vqi_observe::event_multiset(&events);
        let mut span_counts: Vec<(String, u64)> = vqi_observe::snapshot()
            .spans
            .iter()
            .map(|(name, h)| (name.clone(), h.count))
            .collect();
        span_counts.sort();
        vqi_observe::set_journal_enabled(false);
        vqi_observe::set_enabled(false);
        vqi_observe::journal_reset();
        vqi_observe::reset();
        if sequential {
            par::set_parallel_enabled(true);
        } else {
            par::set_thread_cap(0);
        }
        (span_counts, multiset)
    }

    #[test]
    fn maintained_patterns_still_occur() {
        let _guard = crate::fault_test_lock();
        let mut m = Midas::bootstrap(
            GraphCollection::new(initial_graphs()),
            budget(),
            MidasConfig::default(),
        );
        let mut batch = Vec::new();
        for _ in 0..10 {
            batch.push(clique(5, 3, 0));
        }
        m.apply_update(BatchUpdate::adding(batch));
        for p in m.patterns.patterns() {
            let cov = vqi_core::score::pattern_coverage(&p.graph, &m.collection);
            assert!(cov > 0.0, "pattern {} no longer occurs", p.id.0);
        }
    }

    /// Installs a fault plan and removes it on drop, so a failing
    /// assertion cannot leak the plan into other tests.
    struct PlanGuard;
    fn with_plan(plan: vqi_runtime::fault::FaultPlan) -> PlanGuard {
        vqi_runtime::fault::set_plan(plan);
        PlanGuard
    }
    impl Drop for PlanGuard {
        fn drop(&mut self) {
            vqi_runtime::fault::reset();
        }
    }

    fn sorted_codes(set: &PatternSet) -> Vec<vqi_graph::canon::CanonicalCode> {
        let mut codes: Vec<_> = set.patterns().iter().map(|p| p.code.clone()).collect();
        codes.sort();
        codes
    }

    fn major_batch() -> Vec<Graph> {
        let mut batch = Vec::new();
        for _ in 0..10 {
            batch.push(clique(5, 3, 0));
            batch.push(star(6, 4, 0));
        }
        batch
    }

    #[test]
    fn ctrl_with_unlimited_budget_matches_plain() {
        let _guard = crate::fault_test_lock();
        let mut plain = Midas::bootstrap(
            GraphCollection::new(initial_graphs()),
            budget(),
            MidasConfig::default(),
        );
        let mut ctrl = Midas::bootstrap(
            GraphCollection::new(initial_graphs()),
            budget(),
            MidasConfig::default(),
        );
        let want = plain.apply_update(BatchUpdate::adding(major_batch()));
        let got = ctrl
            .apply_update_ctrl(BatchUpdate::adding(major_batch()), &Budget::unlimited())
            .expect("non-fail-fast never errors");
        assert!(got.completeness.is_complete());
        assert_eq!(got.value.modification, want.modification);
        assert_eq!(got.value.gfd_distance, want.gfd_distance);
        assert_eq!(got.value.swaps, want.swaps);
        assert_eq!(got.value.clusters_touched, want.clusters_touched);
        assert_eq!(sorted_codes(&ctrl.patterns), sorted_codes(&plain.patterns));
        assert_eq!(ctrl.gfd(), plain.gfd());
    }

    #[test]
    fn cached_census_matches_full_recompute() {
        let _guard = crate::fault_test_lock();
        use vqi_graph::graphlet::collection_distribution_sampled;
        let mut m = Midas::bootstrap(
            GraphCollection::new(initial_graphs()),
            budget(),
            MidasConfig::default(),
        );
        let live = m.collection.len();
        // mixed batch: two removals, two additions — only the additions
        // may be counted fresh
        let r1 = m.apply_update(BatchUpdate {
            additions: vec![clique(5, 3, 0), chain(7, 1, 0)],
            removals: vec![1, 4],
        });
        assert_eq!(r1.census_mode, CensusMode::Delta);
        assert_eq!(r1.census_computed, 2);
        assert_eq!(r1.census_reused, live - 2);
        let fresh = |m: &Midas| {
            let graphs: Vec<&Graph> = m.collection.iter().map(|(_, g)| g).collect();
            collection_distribution_sampled(&graphs, m.config.gfd_retention, m.config.seed)
        };
        assert_eq!(
            m.gfd().map(f64::to_bits),
            fresh(&m).map(f64::to_bits),
            "cached GFD must be bit-identical to a full recompute"
        );
        // removal-only batch: nothing is counted at all
        let r2 = m.apply_update(BatchUpdate::removing(vec![0]));
        assert_eq!(r2.census_mode, CensusMode::Delta);
        assert_eq!(r2.census_computed, 0);
        assert_eq!(r2.census_reused, m.collection.len());
        assert_eq!(m.gfd().map(f64::to_bits), fresh(&m).map(f64::to_bits));
    }

    #[test]
    fn windowed_drift_escalates_sub_threshold_batches() {
        let _guard = crate::fault_test_lock();
        let batch_a = || vec![clique(5, 3, 0), clique(5, 3, 0)];
        let batch_b = || vec![star(6, 4, 0), star(6, 4, 0)];
        // probe pass: measure each batch's individual drift with the
        // threshold out of reach, so both land as minor
        let probe_cfg = MidasConfig {
            drift_threshold: f64::INFINITY,
            ..Default::default()
        };
        let mut probe =
            Midas::bootstrap(GraphCollection::new(initial_graphs()), budget(), probe_cfg);
        let d1 = probe
            .apply_update(BatchUpdate::adding(batch_a()))
            .gfd_distance;
        let d2 = probe
            .apply_update(BatchUpdate::adding(batch_b()))
            .gfd_distance;
        assert!(
            d1 > 0.0 && d2 > 0.0,
            "probe batches must drift ({d1}, {d2})"
        );
        // a threshold no single batch reaches but the two-batch window does
        let threshold = d1.max(d2) + d1.min(d2) / 2.0;

        // window 1 (the classic rule): both batches stay minor
        let mut classic = Midas::bootstrap(
            GraphCollection::new(initial_graphs()),
            budget(),
            MidasConfig {
                drift_threshold: threshold,
                ..Default::default()
            },
        );
        let r1 = classic.apply_update(BatchUpdate::adding(batch_a()));
        let r2 = classic.apply_update(BatchUpdate::adding(batch_b()));
        assert_eq!(r1.modification, Modification::Minor);
        assert_eq!(r2.modification, Modification::Minor);

        // window 2: the same stream escalates on the second batch
        let mut windowed = Midas::bootstrap(
            GraphCollection::new(initial_graphs()),
            budget(),
            MidasConfig {
                drift_threshold: threshold,
                drift_window: 2,
                ..Default::default()
            },
        );
        let r1 = windowed.apply_update(BatchUpdate::adding(batch_a()));
        assert_eq!(r1.modification, Modification::Minor);
        assert_eq!(
            r1.gfd_distance, d1,
            "same stream must measure the same drift"
        );
        assert_eq!(r1.windowed_drift, d1);
        let r2 = windowed.apply_update(BatchUpdate::adding(batch_b()));
        assert_eq!(r2.modification, Modification::Major);
        assert_eq!(r2.gfd_distance, d2);
        assert_eq!(r2.windowed_drift, d1 + d2);
        // the major pass re-baselined the window: an empty batch drifts
        // nothing and stays minor
        let r3 = windowed.apply_update(BatchUpdate::adding(vec![]));
        assert_eq!(r3.modification, Modification::Minor);
        assert_eq!(r3.windowed_drift, 0.0);
    }

    #[test]
    fn failed_census_keeps_previous_gfd_and_skips_maintenance() {
        let _guard = crate::fault_test_lock();
        let mut m = Midas::bootstrap(
            GraphCollection::new(initial_graphs()),
            budget(),
            MidasConfig::default(),
        );
        let gfd_before = m.gfd();
        let stale = sorted_codes(&m.patterns);
        // a tiny tick quota trips the graphlet kernel mid-census
        let tight = Budget::unlimited().with_kernel_ticks(2);
        let out = m
            .apply_update_ctrl(BatchUpdate::adding(major_batch()), &tight)
            .expect("non-fail-fast never errors");
        assert!(!out.completeness.is_complete());
        assert_eq!(out.value.modification, Modification::Minor);
        assert_eq!(out.value.swaps, 0);
        assert_eq!(m.gfd(), gfd_before, "failed census must keep the old GFD");
        assert_eq!(sorted_codes(&m.patterns), stale, "patterns must be kept");
        // the collection itself still reflects the batch
        assert_eq!(
            m.collection.len(),
            initial_graphs().len() + major_batch().len()
        );
    }

    #[test]
    fn injected_faults_degrade_deterministically() {
        let _guard = crate::fault_test_lock();
        use vqi_runtime::fault::FaultPlan;
        for (panic_rate, timeout_rate) in [(1.0, 0.0), (0.0, 1.0)] {
            for seed in [1u64, 2] {
                let mut per_cap = Vec::new();
                for cap in [1usize, 2, 4] {
                    par::set_thread_cap(cap);
                    // bootstrap runs fault-free; only maintenance is attacked
                    let mut m = Midas::bootstrap(
                        GraphCollection::new(initial_graphs()),
                        budget(),
                        MidasConfig::default(),
                    );
                    let _p = with_plan(FaultPlan {
                        seed,
                        panic_rate,
                        timeout_rate,
                        ..Default::default()
                    });
                    let out = m
                        .apply_update_ctrl(BatchUpdate::adding(major_batch()), &Budget::unlimited())
                        .expect("non-fail-fast never errors");
                    par::set_thread_cap(0);
                    per_cap.push((
                        out.value.modification,
                        out.completeness,
                        sorted_codes(&m.patterns),
                        m.gfd(),
                    ));
                }
                assert_eq!(per_cap[0], per_cap[1], "seed {seed} differs at cap 2");
                assert_eq!(per_cap[0], per_cap[2], "seed {seed} differs at cap 4");
            }
        }
    }

    #[test]
    fn fail_fast_propagates_the_first_fault() {
        let _guard = crate::fault_test_lock();
        use vqi_runtime::fault::FaultPlan;
        let mut m = Midas::bootstrap(
            GraphCollection::new(initial_graphs()),
            budget(),
            MidasConfig::default(),
        );
        let _p = with_plan(FaultPlan {
            seed: 7,
            panic_rate: 1.0,
            ..Default::default()
        });
        let strict = Budget::unlimited().with_fail_fast(true);
        assert!(m
            .apply_update_ctrl(BatchUpdate::adding(major_batch()), &strict)
            .is_err());
    }
}
