//! MIDAS — efficient and effective maintenance of canned patterns in
//! visual graph query interfaces (Huang et al., SIGMOD 2021, as surveyed
//! in §2.4 of the tutorial).
//!
//! Re-running CATAPULT from scratch whenever the repository changes is
//! extremely inefficient; MIDAS maintains the existing pattern set under
//! *batch* updates instead:
//!
//! 1. newly added graphs are assigned to existing clusters (or found new
//!    ones) by feature distance; deleted graphs leave their clusters;
//! 2. the *graphlet frequency distributions* of the repository before and
//!    after the batch are compared (Euclidean distance) to decide whether
//!    the modification is **minor** — only clusters and CSGs are
//!    refreshed — or **major** — pattern maintenance runs;
//! 3. features are *frequent closed trees* (FCTs) rather than raw
//!    frequent subtrees, because closedness is stable under small changes
//!    and the [`vqi_mining::fct::FctIndex`] updates incrementally;
//! 4. on a major modification, candidates are generated from the CSGs of
//!    new and modified clusters and the pattern set is updated by a
//!    **multi-scan swapping strategy** ([`swap`]) that only accepts swaps
//!    with progressive coverage gain that don't sacrifice diversity or
//!    cognitive load, using coverage-based pruning over two indices
//!    (pattern → covered-graphs bitsets and graph → covering-pattern
//!    counts).
//!
//! The headline guarantee — the updated pattern set scores at least as
//! well on the updated repository as the stale set would — is enforced by
//! construction (swaps that don't improve are rejected) and asserted in
//! the tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod maintain;
pub mod swap;

pub use maintain::{CensusMode, MaintenanceReport, Midas, MidasConfig, Modification};

/// Serializes tests against the process-global fault-injection plan:
/// any test that runs a pipeline (whose stage bodies contain fault
/// sites) must not race a test that installs a plan.
#[cfg(test)]
pub(crate) fn fault_test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}
