//! The multi-scan swapping strategy.
//!
//! Given the current canned patterns and a pool of fresh candidates from
//! new/modified CSGs, each scan tries to replace one existing pattern
//! with one candidate. A swap is accepted only if
//!
//! 1. the covered-graph union does **not shrink** (progressive coverage),
//!    and
//! 2. the combined set score (coverage + diversity − cognitive load)
//!    strictly improves.
//!
//! Candidates are pruned cheaply before the expensive checks: if a
//! candidate's total coverage count cannot exceed the weakest pattern's
//! sole contribution, no swap involving it can grow the union. The two
//! supporting indices — pattern → sole-coverage bitsets and the
//! once/multiply-covered partition — are computed word-parallel with
//! [`BitSet`] algebra instead of per-graph counting loops.

use vqi_core::bitset::BitSet;
use vqi_core::pattern::PatternSet;
use vqi_core::score::{set_score_bitsets, QualityWeights};
use vqi_graph::mcs::mcs_similarity_at_least;
use vqi_graph::Graph;

/// A fresh candidate with its coverage bitset over the live graphs.
#[derive(Debug, Clone)]
pub struct SwapCandidate {
    /// Candidate pattern graph.
    pub graph: Graph,
    /// Bit `i` set = candidate covers live graph position `i`.
    pub coverage: BitSet,
}

/// Outcome counters of one maintenance pass.
#[derive(Debug, Clone, Copy, Default)]
pub struct SwapStats {
    /// Accepted swaps.
    pub swaps: usize,
    /// Candidates considered.
    pub considered: usize,
    /// Candidates eliminated by coverage-based pruning.
    pub pruned: usize,
    /// Scans executed.
    pub scans: usize,
}

/// Runs up to `scans` swap scans over (`patterns`, `pattern_bitsets`)
/// with the given candidates. Mutates both in place so they stay aligned.
/// Returns the statistics.
#[allow(clippy::ptr_arg)] // callers hold a Vec; bitsets are replaced whole
pub fn multi_scan_swap(
    patterns: &mut PatternSet,
    pattern_bitsets: &mut Vec<BitSet>,
    mut candidates: Vec<SwapCandidate>,
    n_graphs: usize,
    scans: usize,
    weights: QualityWeights,
) -> SwapStats {
    let mut stats = SwapStats::default();
    if n_graphs == 0 || patterns.is_empty() {
        return stats;
    }
    // drop candidates isomorphic to current patterns up front
    candidates.retain(|c| !patterns.contains_isomorphic(&c.graph));
    stats.considered = candidates.len();

    for _ in 0..scans {
        stats.scans += 1;
        let mut improved = false;

        // partition the graphs by how many patterns cover them:
        // `any` = covered at least once, `multi` = at least twice,
        // `once` = exactly once — all in O(words · patterns)
        let mut any = BitSet::new(n_graphs);
        let mut multi = BitSet::new(n_graphs);
        for b in pattern_bitsets.iter() {
            multi.or_and(&any, b);
            any.union_with(b);
        }
        let once = any.and_not(&multi);
        // sole[pi] = graphs only pattern pi covers
        let sole: Vec<BitSet> = pattern_bitsets.iter().map(|b| b.and(&once)).collect();
        // weakest sole contribution among current patterns (pruning bound)
        let min_sole = sole.iter().map(BitSet::count_ones).min().unwrap_or(0);

        let current_score = {
            let graphs: Vec<&Graph> = patterns.graphs().collect();
            let bitsets: Vec<&BitSet> = pattern_bitsets.iter().collect();
            set_score_bitsets(&graphs, &bitsets, n_graphs, weights)
        };

        let mut best: Option<(f64, usize, usize)> = None; // (score, cand, pat)
        for (ci, cand) in candidates.iter().enumerate() {
            let cand_cov = cand.coverage.count_ones();
            // coverage-based pruning: this candidate cannot restore even
            // the weakest pattern's sole coverage, so the union would
            // shrink for every possible swap — skip all score checks
            if cand_cov < min_sole {
                stats.pruned += 1;
                continue;
            }
            // graphs newly covered by the candidate, independent of which
            // pattern it would replace
            let gained = cand.coverage.count_and_not(&any);
            for pi in 0..pattern_bitsets.len() {
                // progressive-coverage check via the sole-coverage index
                let lost = sole[pi].count_and_not(&cand.coverage);
                if gained < lost {
                    continue; // union would shrink
                }
                // full score check on the hypothetical set
                let mut graphs: Vec<&Graph> = patterns.graphs().collect();
                graphs[pi] = &cand.graph;
                let mut bit_refs: Vec<&BitSet> = pattern_bitsets.iter().collect();
                bit_refs[pi] = &cand.coverage;
                let new_score = set_score_bitsets(&graphs, &bit_refs, n_graphs, weights);
                if new_score > current_score + 1e-12 && best.is_none_or(|(s, _, _)| new_score > s) {
                    best = Some((new_score, ci, pi));
                }
            }
        }
        if let Some((_, ci, pi)) = best {
            let cand = candidates.swap_remove(ci);
            if patterns
                .replace(pi, cand.graph.clone(), "midas:swap")
                .is_ok()
            {
                pattern_bitsets[pi] = cand.coverage;
                stats.swaps += 1;
                improved = true;
            }
        }
        if !improved {
            break;
        }
    }
    stats
}

/// Similarity guard used when proposing candidates: a candidate nearly
/// identical to an existing pattern cannot add diversity.
///
/// Uses the threshold-aware MCS kernel: most pairs are decided by the
/// fingerprint upper bound or a seeded branch-and-bound without computing
/// the exact similarity, with the same answer as the naive comparison.
pub fn too_similar(candidate: &Graph, patterns: &PatternSet, threshold: f64) -> bool {
    patterns
        .graphs()
        .any(|p| mcs_similarity_at_least(candidate, p, threshold))
}

#[cfg(test)]
mod tests {
    use super::*;
    use vqi_core::pattern::PatternKind;
    use vqi_graph::generate::{chain, cycle, star};

    fn set_of(graphs: Vec<Graph>) -> (PatternSet, Vec<BitSet>) {
        let mut set = PatternSet::new();
        for g in graphs {
            set.insert(g, PatternKind::Canned, "init").unwrap();
        }
        (set, vec![])
    }

    #[test]
    fn accepts_strictly_better_swap() {
        // pattern A covers 1 of 4 graphs; candidate covers 3 of 4
        let (mut set, _) = set_of(vec![chain(4, 1, 0)]);
        let mut bitsets = vec![BitSet::from_bools(&[true, false, false, false])];
        let cand = SwapCandidate {
            graph: star(3, 2, 0),
            coverage: BitSet::from_bools(&[true, true, true, false]),
        };
        let stats = multi_scan_swap(
            &mut set,
            &mut bitsets,
            vec![cand],
            4,
            3,
            QualityWeights::default(),
        );
        assert_eq!(stats.swaps, 1);
        assert!(set.contains_isomorphic(&star(3, 2, 0)));
        assert_eq!(bitsets[0], BitSet::from_bools(&[true, true, true, false]));
    }

    #[test]
    fn rejects_coverage_shrinking_swap() {
        let (mut set, _) = set_of(vec![chain(4, 1, 0)]);
        let mut bitsets = vec![BitSet::from_bools(&[true, true, false, false])];
        // candidate is more "diverse" but halves coverage
        let cand = SwapCandidate {
            graph: cycle(4, 3, 0),
            coverage: BitSet::from_bools(&[true, false, false, false]),
        };
        let stats = multi_scan_swap(
            &mut set,
            &mut bitsets,
            vec![cand],
            4,
            3,
            QualityWeights {
                diversity: 10.0, // even huge diversity weight cannot force it
                cognitive: 0.0,
            },
        );
        assert_eq!(stats.swaps, 0);
        assert!(set.contains_isomorphic(&chain(4, 1, 0)));
    }

    #[test]
    fn pruning_skips_hopeless_candidates() {
        let (mut set, _) = set_of(vec![chain(4, 1, 0)]);
        let mut bitsets = vec![BitSet::from_bools(&[true, true, true, true])];
        let cand = SwapCandidate {
            graph: cycle(4, 3, 0),
            coverage: BitSet::from_bools(&[false, false, false, false]),
        };
        let stats = multi_scan_swap(
            &mut set,
            &mut bitsets,
            vec![cand],
            4,
            3,
            QualityWeights::default(),
        );
        assert_eq!(stats.swaps, 0);
        assert!(
            stats.pruned >= 1,
            "zero-coverage candidate should be pruned"
        );
    }

    #[test]
    fn isomorphic_candidates_are_ignored() {
        let (mut set, _) = set_of(vec![chain(4, 1, 0)]);
        let mut bitsets = vec![BitSet::from_bools(&[true, false])];
        let cand = SwapCandidate {
            graph: chain(4, 1, 0),
            coverage: BitSet::from_bools(&[true, true]),
        };
        let stats = multi_scan_swap(
            &mut set,
            &mut bitsets,
            vec![cand],
            2,
            3,
            QualityWeights::default(),
        );
        assert_eq!(stats.considered, 0);
        assert_eq!(stats.swaps, 0);
    }

    #[test]
    fn multiple_scans_chain_improvements() {
        // two patterns, two candidates that each improve one slot
        let (mut set, _) = set_of(vec![chain(4, 1, 0), chain(5, 1, 0)]);
        let mut bitsets = vec![
            BitSet::from_bools(&[true, false, false, false]),
            BitSet::from_bools(&[true, false, false, false]),
        ];
        let cands = vec![
            SwapCandidate {
                graph: star(3, 2, 0),
                coverage: BitSet::from_bools(&[true, true, false, false]),
            },
            SwapCandidate {
                graph: cycle(4, 3, 0),
                coverage: BitSet::from_bools(&[false, false, true, true]),
            },
        ];
        let stats = multi_scan_swap(
            &mut set,
            &mut bitsets,
            cands,
            4,
            5,
            QualityWeights::default(),
        );
        assert_eq!(stats.swaps, 2, "both improving swaps should land");
        assert!(stats.scans >= 2);
    }

    #[test]
    fn swap_outcome_is_identical_with_and_without_the_kernel_cache() {
        let build = || {
            let (mut set, _) = set_of(vec![chain(4, 1, 0), chain(5, 1, 0)]);
            let mut bitsets = vec![
                BitSet::from_bools(&[true, false, false, false]),
                BitSet::from_bools(&[true, false, false, false]),
            ];
            let cands = vec![
                SwapCandidate {
                    graph: star(3, 2, 0),
                    coverage: BitSet::from_bools(&[true, true, false, false]),
                },
                SwapCandidate {
                    graph: cycle(4, 3, 0),
                    coverage: BitSet::from_bools(&[false, false, true, true]),
                },
            ];
            let stats = multi_scan_swap(
                &mut set,
                &mut bitsets,
                cands,
                4,
                5,
                QualityWeights::default(),
            );
            (set, bitsets, stats.swaps)
        };
        vqi_graph::cache::set_enabled(true);
        let (set_on, bits_on, swaps_on) = build();
        vqi_graph::cache::set_enabled(false);
        let (set_off, bits_off, swaps_off) = build();
        vqi_graph::cache::set_enabled(true);
        assert_eq!(swaps_on, swaps_off);
        assert_eq!(bits_on, bits_off);
        assert_eq!(set_on.len(), set_off.len());
        for p in set_on.patterns() {
            assert!(set_off.contains_isomorphic(&p.graph));
        }
    }

    #[test]
    fn similarity_guard() {
        let (set, _) = set_of(vec![chain(4, 1, 0)]);
        assert!(too_similar(&chain(4, 1, 0), &set, 0.99));
        assert!(!too_similar(&cycle(4, 3, 0), &set, 0.5));
    }

    #[test]
    fn similarity_guard_matches_exact_path() {
        let (set, _) = set_of(vec![chain(4, 1, 0), star(4, 2, 0)]);
        let probes = [
            chain(4, 1, 0),
            chain(5, 1, 0),
            cycle(4, 3, 0),
            star(3, 2, 0),
        ];
        for threshold in [0.0, 0.25, 0.5, 0.75, 1.0] {
            for probe in &probes {
                vqi_graph::mcs::set_bound_skip_enabled(true);
                let bounded = too_similar(probe, &set, threshold);
                vqi_graph::mcs::set_bound_skip_enabled(false);
                let exact = too_similar(probe, &set, threshold);
                vqi_graph::mcs::set_bound_skip_enabled(true);
                assert_eq!(bounded, exact, "threshold {threshold}");
            }
        }
    }
}
