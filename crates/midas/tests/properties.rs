//! Property-based tests of MIDAS: the quality guarantee and state
//! consistency under random batch streams.

use midas::{Midas, MidasConfig};
use proptest::prelude::*;
use vqi_core::budget::PatternBudget;
use vqi_core::repo::{BatchUpdate, GraphCollection, GraphRepository};
use vqi_core::score::{evaluate, pattern_coverage};
use vqi_datasets::{aids_like, MoleculeParams};
use vqi_graph::generate as gen;
use vqi_graph::Graph;

/// A random structural batch: mixes of cliques, stars, cycles with fresh
/// labels so the GFD can drift.
fn arb_batch() -> impl Strategy<Value = Vec<Graph>> {
    proptest::collection::vec((0usize..3, 4usize..7, 3u32..7), 3..15).prop_map(|specs| {
        specs
            .into_iter()
            .map(|(kind, size, label)| match kind {
                0 => gen::clique(size, label, 0),
                1 => gen::star(size, label, 0),
                _ => gen::cycle(size, label, 0),
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// After any stream of batches, (a) the maintained pattern set scores
    /// at least as well as the stale set on the updated repository,
    /// (b) every maintained pattern still occurs, and (c) internal state
    /// stays aligned.
    #[test]
    fn maintenance_guarantees(
        seed in 0u64..300,
        batches in proptest::collection::vec(arb_batch(), 1..3),
        remove_some in any::<bool>(),
    ) {
        let initial = aids_like(MoleculeParams {
            count: 25,
            seed,
            ..Default::default()
        });
        let budget = PatternBudget::new(4, 4, 6);
        let mut m = Midas::bootstrap(
            GraphCollection::new(initial),
            budget,
            MidasConfig::default(),
        );
        for (i, additions) in batches.into_iter().enumerate() {
            let stale = m.patterns.clone();
            let removals = if remove_some && i == 0 {
                vec![0, 1]
            } else {
                vec![]
            };
            m.apply_update(BatchUpdate { additions, removals });

            let repo = GraphRepository::Collection(m.collection.clone());
            let w = Default::default();
            let fresh_q = evaluate(&m.patterns, &repo, w);
            let stale_q = evaluate(&stale, &repo, w);
            prop_assert!(
                fresh_q.score >= stale_q.score - 1e-9,
                "batch {i}: maintained {:.4} < stale {:.4}",
                fresh_q.score,
                stale_q.score
            );
            for p in m.patterns.patterns() {
                prop_assert!(
                    pattern_coverage(&p.graph, &m.collection) > 0.0,
                    "batch {i}: maintained pattern occurs nowhere"
                );
            }
            prop_assert!(m.cluster_count() > 0);
        }
    }
}
