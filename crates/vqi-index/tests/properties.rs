//! Property-based soundness tests: the indices never change search
//! results relative to brute force.

use proptest::prelude::*;
use vqi_graph::iso::{is_subgraph_isomorphic, MatchOptions};
use vqi_graph::{Graph, NodeId};
use vqi_index::{ClosureTree, TripleIndex};

fn arb_connected(max_n: usize) -> impl Strategy<Value = Graph> {
    (2..=max_n).prop_flat_map(move |n| {
        let parents: Vec<_> = (1..n).map(|i| 0..i).collect();
        let labels = proptest::collection::vec(0u32..3, n);
        let elabels = proptest::collection::vec(0u32..2, n - 1);
        (labels, parents, elabels).prop_map(move |(nl, ps, el)| {
            let mut g = Graph::new();
            let nodes: Vec<NodeId> = nl.iter().map(|&l| g.add_node(l)).collect();
            for (i, p) in ps.iter().enumerate() {
                g.add_edge(nodes[i + 1], nodes[*p], el[i]);
            }
            g
        })
    })
}

fn brute_force(query: &Graph, gs: &[Graph]) -> Vec<usize> {
    gs.iter()
        .enumerate()
        .filter(|(_, g)| is_subgraph_isomorphic(query, g, MatchOptions::with_wildcards()))
        .map(|(i, _)| i)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Triple-index search equals brute force for any collection/query.
    #[test]
    fn triple_index_is_sound_and_complete(
        gs in proptest::collection::vec(arb_connected(6), 1..8),
        q in arb_connected(4),
    ) {
        let idx = TripleIndex::build(gs.iter().enumerate());
        let found = idx.search(&q, |id| &gs[id]);
        prop_assert_eq!(found, brute_force(&q, &gs));
    }

    /// Closure-tree search equals brute force for any collection/query
    /// and any fanout.
    #[test]
    fn ctree_is_sound_and_complete(
        gs in proptest::collection::vec(arb_connected(6), 1..8),
        q in arb_connected(4),
        fanout in 2usize..5,
    ) {
        let t = ClosureTree::bulk_load(gs.iter().enumerate(), fanout);
        let (found, stats) = t.search(&q, |id| &gs[id]);
        prop_assert_eq!(&found, &brute_force(&q, &gs));
        prop_assert!(stats.candidates >= found.len());
    }

    /// The triple filter never rejects a true match (pure soundness, on
    /// the filter alone).
    #[test]
    fn triple_filter_never_drops_matches(
        gs in proptest::collection::vec(arb_connected(6), 1..8),
        q in arb_connected(4),
    ) {
        let idx = TripleIndex::build(gs.iter().enumerate());
        let filtered = idx.filter(&q);
        for hit in brute_force(&q, &gs) {
            prop_assert!(filtered.contains(&hit), "filter dropped true match {hit}");
        }
    }
}
