//! Labeled-edge-triple inverted index (filter-verify).

use std::collections::HashMap;
use vqi_graph::graph::WILDCARD_LABEL;
use vqi_graph::iso::{is_subgraph_isomorphic, MatchOptions};
use vqi_graph::{Graph, Label};

/// A normalized labeled edge triple `(min end label, edge label, max end
/// label)`.
pub type Triple = (Label, Label, Label);

/// Extracts the triple multiset of a graph.
pub fn triples_of(g: &Graph) -> HashMap<Triple, usize> {
    let mut out = HashMap::new();
    for e in g.edges() {
        let (u, v) = g.endpoints(e);
        let (a, b) = {
            let lu = g.node_label(u);
            let lv = g.node_label(v);
            if lu <= lv {
                (lu, lv)
            } else {
                (lv, lu)
            }
        };
        *out.entry((a, g.edge_label(e), b)).or_insert(0) += 1;
    }
    out
}

/// An inverted triple index over a collection of graphs.
#[derive(Debug, Clone, Default)]
pub struct TripleIndex {
    /// Per-graph triple multisets, keyed by external graph id.
    per_graph: HashMap<usize, HashMap<Triple, usize>>,
}

impl TripleIndex {
    /// Builds the index over `(id, graph)` pairs.
    pub fn build<'a, I: IntoIterator<Item = (usize, &'a Graph)>>(graphs: I) -> Self {
        TripleIndex {
            per_graph: graphs
                .into_iter()
                .map(|(id, g)| (id, triples_of(g)))
                .collect(),
        }
    }

    /// Number of indexed graphs.
    pub fn len(&self) -> usize {
        self.per_graph.len()
    }

    /// True if no graphs are indexed.
    pub fn is_empty(&self) -> bool {
        self.per_graph.is_empty()
    }

    /// Adds or replaces one graph.
    pub fn insert(&mut self, id: usize, g: &Graph) {
        self.per_graph.insert(id, triples_of(g));
    }

    /// Removes one graph.
    pub fn remove(&mut self, id: usize) {
        self.per_graph.remove(&id);
    }

    /// True if the indexed graph `id` *may* contain `query`: it has
    /// every non-wildcard query triple at least as often. Queries whose
    /// triples involve [`WILDCARD_LABEL`] skip those triples (they
    /// constrain nothing), so wildcard patterns are never filtered.
    pub fn may_contain(&self, id: usize, query: &Graph) -> bool {
        let Some(have) = self.per_graph.get(&id) else {
            return false;
        };
        for (t, need) in triples_of(query) {
            if t.0 == WILDCARD_LABEL || t.1 == WILDCARD_LABEL || t.2 == WILDCARD_LABEL {
                continue;
            }
            if have.get(&t).copied().unwrap_or(0) < need {
                return false;
            }
        }
        true
    }

    /// Ids surviving the filter, sorted.
    pub fn filter(&self, query: &Graph) -> Vec<usize> {
        let mut out: Vec<usize> = self
            .per_graph
            .keys()
            .copied()
            .filter(|&id| self.may_contain(id, query))
            .collect();
        out.sort_unstable();
        out
    }

    /// Full filter-verify search: returns the sorted ids of graphs in
    /// `lookup` that actually contain `query`.
    pub fn search<'a, F: Fn(usize) -> &'a Graph + Sync>(
        &self,
        query: &Graph,
        lookup: F,
    ) -> Vec<usize> {
        use rayon::prelude::*;
        let candidates = self.filter(query);
        let mut out: Vec<usize> = candidates
            .into_par_iter()
            .filter(|&id| is_subgraph_isomorphic(query, lookup(id), MatchOptions::with_wildcards()))
            .collect();
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vqi_graph::generate::{chain, cycle, star};

    fn graphs() -> Vec<Graph> {
        vec![
            chain(5, 1, 0),
            cycle(4, 1, 0),
            star(4, 2, 3),
            chain(3, 2, 3),
        ]
    }

    fn index(gs: &[Graph]) -> TripleIndex {
        TripleIndex::build(gs.iter().enumerate())
    }

    #[test]
    fn triples_are_normalized() {
        let mut g = Graph::new();
        let a = g.add_node(9);
        let b = g.add_node(1);
        g.add_edge(a, b, 5);
        let t = triples_of(&g);
        assert_eq!(t.get(&(1, 5, 9)), Some(&1));
    }

    #[test]
    fn filter_prunes_impossible_graphs() {
        let gs = graphs();
        let idx = index(&gs);
        // a (2)-[3]-(2) edge exists only in graphs 2 and 3
        let q = chain(2, 2, 3);
        assert_eq!(idx.filter(&q), vec![2, 3]);
        // an unseen label prunes everything
        let q2 = chain(2, 99, 0);
        assert!(idx.filter(&q2).is_empty());
    }

    #[test]
    fn multiset_counts_matter() {
        let gs = graphs();
        let idx = index(&gs);
        // three (1)-[0]-(1) edges exist in the 5-chain and the 4-cycle,
        // but a query needing four such edges only fits the cycle
        let q3 = chain(4, 1, 0); // 3 triples
        assert_eq!(idx.filter(&q3), vec![0, 1]);
        let q4 = chain(5, 1, 0); // 4 triples
        assert_eq!(idx.filter(&q4), vec![0, 1]); // cycle(4) also has 4 edges
        let q5 = chain(6, 1, 0); // 5 triples: neither has 5 such edges
        assert!(idx.filter(&q5).is_empty());
    }

    #[test]
    fn filter_is_sound_wrt_verification() {
        let gs = graphs();
        let idx = index(&gs);
        for q in [chain(3, 1, 0), cycle(3, 1, 0), star(3, 2, 3)] {
            let verified = idx.search(&q, |id| &gs[id]);
            // brute force ground truth
            let truth: Vec<usize> = gs
                .iter()
                .enumerate()
                .filter(|(_, g)| is_subgraph_isomorphic(&q, g, MatchOptions::with_wildcards()))
                .map(|(i, _)| i)
                .collect();
            assert_eq!(verified, truth, "query {}", q.summary());
        }
    }

    #[test]
    fn wildcards_bypass_the_filter() {
        let gs = graphs();
        let idx = index(&gs);
        let q = chain(
            2,
            vqi_graph::graph::WILDCARD_LABEL,
            vqi_graph::graph::WILDCARD_LABEL,
        );
        // every graph has an edge, none may be filtered
        assert_eq!(idx.filter(&q).len(), gs.len());
    }

    #[test]
    fn updates_work() {
        let gs = graphs();
        let mut idx = index(&gs);
        idx.remove(0);
        assert_eq!(idx.len(), 3);
        let q = chain(4, 1, 0);
        assert_eq!(idx.filter(&q), vec![1]);
        let extra = chain(6, 1, 0);
        idx.insert(9, &extra);
        assert_eq!(idx.filter(&q), vec![1, 9]);
    }
}
