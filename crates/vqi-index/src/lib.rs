//! Query-acceleration indices for graph collections.
//!
//! Subgraph search over a collection follows the classic
//! **filter-verify** paradigm: cheap features prune graphs that cannot
//! contain the query, and VF2 verifies the survivors. Two indices are
//! provided:
//!
//! * [`triple`] — an inverted index over labeled edge triples
//!   `(node label, edge label, node label)` with multiset counts: a
//!   graph can contain the query only if it contains every query triple
//!   at least as often. Near-zero build cost, strong pruning on labeled
//!   data.
//! * [`ctree`] — a **closure-tree** (He & Singh, ICDE 2006 — reference
//!   [22] of the tutorial, and the origin of CATAPULT's cluster summary
//!   graphs): a hierarchy of closure graphs over the collection. A query
//!   that does not (wildcard-)embed in an internal node's closure cannot
//!   embed in any leaf below it, so whole subtrees prune at once.
//!
//! Both indices are *sound* (never prune a true match — enforced by the
//! property suite) and *effective* (measured in `bench`'s `indexing`
//! micro-benchmarks and tests).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ctree;
pub mod triple;

pub use ctree::ClosureTree;
pub use triple::TripleIndex;
