//! The closure-tree: a hierarchy of closure graphs over a collection.
//!
//! Every internal node holds the closure of its children, so every
//! descendant graph (wildcard-)embeds in it. Subgraph search descends
//! from the root and prunes any subtree whose closure cannot host the
//! query — sound because embeddings compose: if the query embeds in a
//! leaf graph and the leaf embeds in an ancestor closure, the query
//! embeds in that closure too, so a failed closure test certifies the
//! whole subtree empty.
//!
//! Bulk loading orders leaves by greedy edge-triple similarity (similar
//! graphs share closure structure, keeping closures tight) and packs
//! them `fanout` at a time, level by level.

use crate::triple::triples_of;
use vqi_graph::iso::{is_subgraph_isomorphic, MatchOptions};
use vqi_graph::Graph;
use vqi_mining::closure::{closure_of, ClosureGraph};

/// One tree node.
#[derive(Debug, Clone)]
struct CTreeNode {
    /// The closure covering everything below (for a leaf: the graph
    /// itself).
    closure: ClosureGraph,
    /// Child node indices (empty for leaves).
    children: Vec<usize>,
    /// External graph id (leaves only).
    graph_id: Option<usize>,
}

/// A bulk-loaded closure-tree.
#[derive(Debug, Clone)]
pub struct ClosureTree {
    nodes: Vec<CTreeNode>,
    root: Option<usize>,
    fanout: usize,
}

/// Statistics of one pruned search.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Closure tests performed.
    pub closure_tests: usize,
    /// Subtrees pruned by a failed closure test.
    pub pruned_subtrees: usize,
    /// Leaves reached (verification candidates).
    pub candidates: usize,
}

fn closure_match_options() -> MatchOptions {
    MatchOptions {
        induced: false,
        wildcard: true,
        max_embeddings: 1,
        max_states: 500_000,
    }
}

impl ClosureTree {
    /// Bulk-loads a tree with the given fanout (≥ 2) over `(id, graph)`
    /// pairs.
    pub fn bulk_load<'a, I: IntoIterator<Item = (usize, &'a Graph)>>(
        graphs: I,
        fanout: usize,
    ) -> Self {
        assert!(fanout >= 2, "fanout must be at least 2");
        let items: Vec<(usize, &Graph)> = graphs.into_iter().collect();
        let mut tree = ClosureTree {
            nodes: Vec::new(),
            root: None,
            fanout,
        };
        if items.is_empty() {
            return tree;
        }
        // order leaves by greedy triple-overlap chaining so siblings are
        // structurally similar (tight closures prune better)
        let order = similarity_order(&items);
        let mut level: Vec<usize> = Vec::with_capacity(items.len());
        for &pos in &order {
            let (id, g) = items[pos];
            tree.nodes.push(CTreeNode {
                closure: ClosureGraph::from_graph(g),
                children: vec![],
                graph_id: Some(id),
            });
            level.push(tree.nodes.len() - 1);
        }
        // pack levels until a single root remains
        while level.len() > 1 {
            let mut next: Vec<usize> = Vec::new();
            for chunk in level.chunks(fanout) {
                if chunk.len() == 1 {
                    next.push(chunk[0]);
                    continue;
                }
                let member_graphs: Vec<&Graph> = chunk
                    .iter()
                    .map(|&ni| &tree.nodes[ni].closure.graph)
                    .collect();
                let closure = closure_of(&member_graphs).expect("nonempty chunk");
                tree.nodes.push(CTreeNode {
                    closure,
                    children: chunk.to_vec(),
                    graph_id: None,
                });
                next.push(tree.nodes.len() - 1);
            }
            level = next;
        }
        tree.root = level.first().copied();
        tree
    }

    /// Number of indexed graphs (leaves).
    pub fn len(&self) -> usize {
        self.nodes.iter().filter(|n| n.graph_id.is_some()).count()
    }

    /// True if the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.root.is_none()
    }

    /// Tree height (0 for empty, 1 for a single leaf).
    pub fn height(&self) -> usize {
        fn depth(tree: &ClosureTree, n: usize) -> usize {
            1 + tree.nodes[n]
                .children
                .iter()
                .map(|&c| depth(tree, c))
                .max()
                .unwrap_or(0)
        }
        self.root.map_or(0, |r| depth(self, r))
    }

    /// The configured fanout.
    pub fn fanout(&self) -> usize {
        self.fanout
    }

    /// Returns candidate leaf ids after closure pruning, with stats.
    pub fn candidates(&self, query: &Graph) -> (Vec<usize>, SearchStats) {
        let mut stats = SearchStats::default();
        let mut out = Vec::new();
        let Some(root) = self.root else {
            return (out, stats);
        };
        let mut stack = vec![root];
        while let Some(ni) = stack.pop() {
            let node = &self.nodes[ni];
            stats.closure_tests += 1;
            if !is_subgraph_isomorphic(query, &node.closure.graph, closure_match_options()) {
                stats.pruned_subtrees += 1;
                continue;
            }
            match node.graph_id {
                Some(id) => {
                    stats.candidates += 1;
                    out.push(id);
                }
                None => stack.extend(node.children.iter().copied()),
            }
        }
        out.sort_unstable();
        (out, stats)
    }

    /// Full search: candidate leaves verified against the actual graphs
    /// via `lookup`. Returns sorted matching ids and the stats.
    pub fn search<'a, F: Fn(usize) -> &'a Graph + Sync>(
        &self,
        query: &Graph,
        lookup: F,
    ) -> (Vec<usize>, SearchStats) {
        use rayon::prelude::*;
        let (cands, stats) = self.candidates(query);
        let mut out: Vec<usize> = cands
            .into_par_iter()
            .filter(|&id| is_subgraph_isomorphic(query, lookup(id), MatchOptions::with_wildcards()))
            .collect();
        out.sort_unstable();
        (out, stats)
    }
}

/// Greedy similarity chaining: start at item 0, repeatedly append the
/// unused item sharing the most edge triples with the last one. Falls
/// back to input order for big collections (quadratic cost).
fn similarity_order(items: &[(usize, &Graph)]) -> Vec<usize> {
    let n = items.len();
    if n > 1_500 {
        return (0..n).collect();
    }
    let triple_sets: Vec<std::collections::HashSet<crate::triple::Triple>> = items
        .iter()
        .map(|(_, g)| triples_of(g).into_keys().collect())
        .collect();
    let mut used = vec![false; n];
    let mut order = Vec::with_capacity(n);
    let mut cur = 0usize;
    used[0] = true;
    order.push(0);
    for _ in 1..n {
        let best = (0..n)
            .filter(|&i| !used[i])
            .max_by_key(|&i| triple_sets[cur].intersection(&triple_sets[i]).count())
            .expect("unused item exists");
        used[best] = true;
        order.push(best);
        cur = best;
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use vqi_graph::generate::{chain, cycle, star};

    fn collection() -> Vec<Graph> {
        let mut v = Vec::new();
        for i in 0..6 {
            v.push(chain(5 + i % 3, 1, 0));
            v.push(cycle(4 + i % 2, 2, 0));
            v.push(star(3 + i % 3, 3, 0));
        }
        v
    }

    fn tree(gs: &[Graph], fanout: usize) -> ClosureTree {
        ClosureTree::bulk_load(gs.iter().enumerate(), fanout)
    }

    #[test]
    fn bulk_load_structure() {
        let gs = collection();
        let t = tree(&gs, 4);
        assert_eq!(t.len(), gs.len());
        assert!(t.height() >= 2);
        assert_eq!(t.fanout(), 4);
        assert!(!t.is_empty());
        let empty = ClosureTree::bulk_load(std::iter::empty(), 4);
        assert!(empty.is_empty());
        assert_eq!(empty.height(), 0);
    }

    #[test]
    fn search_matches_brute_force() {
        let gs = collection();
        let t = tree(&gs, 3);
        for q in [
            chain(3, 1, 0),
            cycle(4, 2, 0),
            star(3, 3, 0),
            chain(2, 9, 9),
        ] {
            let (found, _) = t.search(&q, |id| &gs[id]);
            let truth: Vec<usize> = gs
                .iter()
                .enumerate()
                .filter(|(_, g)| is_subgraph_isomorphic(&q, g, MatchOptions::with_wildcards()))
                .map(|(i, _)| i)
                .collect();
            assert_eq!(found, truth, "query {}", q.summary());
        }
    }

    #[test]
    fn pruning_actually_happens() {
        let gs = collection();
        let t = tree(&gs, 3);
        // a label-3 star query cannot live in the label-1/2 subtrees
        let q = star(3, 3, 0);
        let (_, stats) = t.candidates(&q);
        assert!(
            stats.pruned_subtrees > 0,
            "no pruning: {stats:?} (similarity packing should separate labels)"
        );
        // fewer candidates than leaves
        assert!(stats.candidates < gs.len());
    }

    #[test]
    fn unmatchable_query_prunes_at_root() {
        let gs = collection();
        let t = tree(&gs, 4);
        let q = chain(2, 77, 77);
        let (cands, stats) = t.candidates(&q);
        assert!(cands.is_empty());
        assert_eq!(stats.closure_tests, 1, "root test alone suffices");
        assert_eq!(stats.pruned_subtrees, 1);
    }

    #[test]
    fn single_graph_tree() {
        let gs = vec![cycle(5, 1, 0)];
        let t = tree(&gs, 4);
        assert_eq!(t.len(), 1);
        assert_eq!(t.height(), 1);
        let (found, _) = t.search(&chain(3, 1, 0), |id| &gs[id]);
        assert_eq!(found, vec![0]);
    }

    #[test]
    fn fanout_two_builds_deeper_trees() {
        let gs = collection();
        let wide = tree(&gs, 9);
        let deep = tree(&gs, 2);
        assert!(deep.height() > wide.height());
        // both answer identically
        let q = cycle(4, 2, 0);
        let (a, _) = wide.search(&q, |id| &gs[id]);
        let (b, _) = deep.search(&q, |id| &gs[id]);
        assert_eq!(a, b);
    }
}
