//! The end-to-end TATTOO pipeline.

use crate::candidates::{extract_from_region, ExtractParams};
use crate::select::{greedy_select_ctrl, score_candidates};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use vqi_core::budget::PatternBudget;
use vqi_core::ctrl::{run_stage, Budget, Degradation, PipelineOutcome};
use vqi_core::pattern::PatternSet;
use vqi_core::repo::{GraphCollection, GraphRepository};
use vqi_core::score::QualityWeights;
use vqi_core::selector::PatternSelector;
use vqi_graph::truss::decompose_ctrl;
use vqi_graph::Graph;
use vqi_runtime::{fault, VqiError};

/// TATTOO configuration.
#[derive(Debug, Clone, Copy)]
pub struct TattooConfig {
    /// Truss threshold `k` for the `G_T` / `G_O` split.
    pub truss_k: u32,
    /// Candidate-extraction parameters.
    pub extract: ExtractParams,
    /// Score weights.
    pub weights: QualityWeights,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TattooConfig {
    fn default() -> Self {
        TattooConfig {
            truss_k: 3,
            extract: ExtractParams::default(),
            weights: QualityWeights::default(),
            seed: 0x7A77,
        }
    }
}

/// The TATTOO selector.
#[derive(Debug, Clone, Copy, Default)]
pub struct Tattoo {
    /// Configuration.
    pub config: TattooConfig,
}

impl Tattoo {
    /// A selector with the given configuration.
    pub fn new(config: TattooConfig) -> Self {
        Tattoo { config }
    }

    /// Runs the pipeline on a single network.
    pub fn run(&self, network: &Graph, budget: &PatternBudget) -> PatternSet {
        // an unlimited budget cannot trip a stage, so the shared body
        // degenerates to the historical plain pipeline bit for bit
        let mut deg = Degradation::new();
        self.run_impl(network, budget, &Budget::unlimited(), &mut deg)
            .unwrap_or_default()
    }

    /// Budget-aware pipeline: same stages as [`Tattoo::run`], but every
    /// stage honors `ctrl` (deadline, cancel flag, tick quotas) and is
    /// panic-isolated. When nothing trips, the outcome is `Complete`
    /// and bit-identical to the plain entry point; when a stage is cut,
    /// the pipeline keeps everything selected so far (anytime
    /// semantics) and reports the cut stages. `Err` is returned only
    /// under a fail-fast budget.
    pub fn run_ctrl(
        &self,
        network: &Graph,
        budget: &PatternBudget,
        ctrl: &Budget,
    ) -> Result<PipelineOutcome<PatternSet>, VqiError> {
        let mut deg = Degradation::new();
        let value = self.run_impl(network, budget, ctrl, &mut deg)?;
        Ok(deg.finish(value))
    }

    /// Shared stage body of the plain and budget-aware pipelines.
    fn run_impl(
        &self,
        network: &Graph,
        budget: &PatternBudget,
        ctrl: &Budget,
        deg: &mut Degradation,
    ) -> Result<PatternSet, VqiError> {
        let _run = vqi_observe::run("tattoo.run");
        let cfg = &self.config;
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        // the truss split runs on the metered kernel, so a tick quota
        // can interrupt the peel itself, not just stage boundaries
        let split = run_stage(ctrl, "tattoo.truss", || {
            let _s = vqi_observe::span("tattoo.truss_decompose");
            fault::maybe_panic("tattoo.truss", 0);
            decompose_ctrl(network, cfg.truss_k, ctrl).map(|d| {
                let (gt, _) = d.infested_graph(network);
                let (go, _) = d.oblivious_graph(network);
                vqi_observe::incr("tattoo.truss.infested_edges", gt.edge_count() as u64);
                vqi_observe::incr("tattoo.truss.oblivious_edges", go.edge_count() as u64);
                (gt, go)
            })
        })
        .and_then(|r| r);
        let (gt, go) = match split {
            Ok(v) => v,
            Err(e) => {
                // without the region split there is nothing to extract
                deg.absorb(ctrl, e)?;
                return Ok(PatternSet::new());
            }
        };
        let extracted = run_stage(ctrl, "tattoo.candidates", || {
            let _s = vqi_observe::span("tattoo.candidates");
            fault::maybe_panic("tattoo.candidates", 0);
            let mut cands = extract_from_region(&gt, true, budget, cfg.extract, &mut rng);
            cands.extend(extract_from_region(
                &go,
                false,
                budget,
                cfg.extract,
                &mut rng,
            ));
            vqi_observe::incr("tattoo.candidates.generated", cands.len() as u64);
            // dedup across regions
            let mut seen = std::collections::HashSet::new();
            cands.retain(|c| seen.insert(c.code.clone()));
            vqi_observe::incr("tattoo.candidates.deduped", cands.len() as u64);
            if vqi_observe::enabled() {
                for c in &cands {
                    vqi_observe::count!(format!("tattoo.candidates.class.{:?}", c.class), 1);
                }
            }
            cands
        });
        let cands = match extracted {
            Ok(c) => c,
            Err(e) => {
                deg.absorb(ctrl, e)?;
                Vec::new()
            }
        };
        let scored = match run_stage(ctrl, "tattoo.score", || {
            let _s = vqi_observe::span("tattoo.score");
            fault::maybe_panic("tattoo.score", 0);
            score_candidates(cands, network)
        }) {
            Ok(s) => s,
            Err(e) => {
                deg.absorb(ctrl, e)?;
                Vec::new()
            }
        };
        let _s = vqi_observe::span("tattoo.greedy");
        greedy_select_ctrl(scored, network.edge_count(), budget, cfg.weights, ctrl, deg)
    }
}

impl PatternSelector for Tattoo {
    fn name(&self) -> &'static str {
        "tattoo"
    }

    fn select(&self, repo: &GraphRepository, budget: &PatternBudget) -> PatternSet {
        match repo {
            GraphRepository::Network(g) => self.run(g, budget),
            // a collection can be treated as the disjoint union network,
            // though CATAPULT is the intended tool there
            GraphRepository::Collection(c) => {
                let union = disjoint_union(c);
                self.run(&union, budget)
            }
        }
    }

    fn select_ctrl(
        &self,
        repo: &GraphRepository,
        budget: &PatternBudget,
        ctrl: &Budget,
    ) -> Result<PipelineOutcome<PatternSet>, VqiError> {
        match repo {
            GraphRepository::Network(g) => self.run_ctrl(g, budget, ctrl),
            GraphRepository::Collection(c) => {
                let union = disjoint_union(c);
                self.run_ctrl(&union, budget, ctrl)
            }
        }
    }
}

/// Disjoint union of all live graphs of a collection.
fn disjoint_union(c: &GraphCollection) -> Graph {
    let mut g = Graph::new();
    for (_, member) in c.iter() {
        let base = g.node_count() as u32;
        for v in member.nodes() {
            g.add_node(member.node_label(v));
        }
        for e in member.edges() {
            let (u, v) = member.endpoints(e);
            g.add_edge(
                vqi_graph::NodeId(base + u.0),
                vqi_graph::NodeId(base + v.0),
                member.edge_label(e),
            );
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use vqi_core::score::{evaluate, set_coverage_network};
    use vqi_graph::generate::{barabasi_albert, chain, cycle};
    use vqi_graph::traversal::is_connected;

    #[test]
    fn selects_valid_patterns_from_ba_network() {
        let _guard = crate::fault_test_lock();
        let mut rng = SmallRng::seed_from_u64(9);
        let net = barabasi_albert(300, 3, 1, &mut rng);
        let budget = PatternBudget::new(6, 4, 6);
        let set = Tattoo::default().run(&net, &budget);
        assert!(!set.is_empty());
        assert!(set.len() <= 6);
        for p in set.patterns() {
            assert!(budget.admits(&p.graph));
            assert!(is_connected(&p.graph));
            assert!(p.provenance.starts_with("tattoo:"));
        }
        // selected patterns must actually cover edges
        let graphs: Vec<&Graph> = set.graphs().collect();
        assert!(set_coverage_network(&graphs, &net) > 0.0);
    }

    #[test]
    fn provenance_records_both_regions() {
        let _guard = crate::fault_test_lock();
        let mut rng = SmallRng::seed_from_u64(10);
        // BA with m=3 has a dense core and tree-ish periphery
        let net = barabasi_albert(400, 3, 1, &mut rng);
        let budget = PatternBudget::new(8, 4, 6);
        let set = Tattoo::default().run(&net, &budget);
        let provs: Vec<&str> = set
            .patterns()
            .iter()
            .map(|p| p.provenance.as_str())
            .collect();
        assert!(
            provs.iter().any(|p| p.ends_with("G_T")),
            "no truss-region pattern in {provs:?}"
        );
    }

    #[test]
    fn beats_random_on_quality() {
        let _guard = crate::fault_test_lock();
        use vqi_core::selector::RandomSelector;
        let mut rng = SmallRng::seed_from_u64(11);
        let net = barabasi_albert(250, 3, 1, &mut rng);
        let repo = GraphRepository::network(net);
        let budget = PatternBudget::new(6, 4, 6);
        let w = QualityWeights::default();
        let tat = evaluate(&Tattoo::default().select(&repo, &budget), &repo, w);
        let rnd = evaluate(&RandomSelector::new(4).select(&repo, &budget), &repo, w);
        assert!(
            tat.score >= rnd.score,
            "tattoo {:.3} < random {:.3}",
            tat.score,
            rnd.score
        );
    }

    #[test]
    fn collection_fallback_works() {
        let _guard = crate::fault_test_lock();
        let repo = GraphRepository::collection(vec![chain(8, 1, 0), cycle(6, 1, 0)]);
        let set = Tattoo::default().select(&repo, &PatternBudget::new(3, 4, 5));
        assert!(!set.is_empty());
    }

    #[test]
    fn deterministic_given_seed() {
        let _guard = crate::fault_test_lock();
        let mut rng = SmallRng::seed_from_u64(12);
        let net = barabasi_albert(150, 2, 1, &mut rng);
        let budget = PatternBudget::new(4, 4, 5);
        let a = Tattoo::default().run(&net, &budget);
        let b = Tattoo::default().run(&net, &budget);
        assert_eq!(a.len(), b.len());
        for (pa, pb) in a.patterns().iter().zip(b.patterns()) {
            assert_eq!(pa.code, pb.code);
        }
    }

    #[test]
    fn selection_is_identical_across_thread_counts() {
        let _guard = crate::fault_test_lock();
        use vqi_graph::canon::CanonicalCode;
        let mut rng = SmallRng::seed_from_u64(13);
        let net = barabasi_albert(200, 3, 1, &mut rng);
        let budget = PatternBudget::new(5, 4, 6);
        let codes_at = |cap: usize| -> Vec<CanonicalCode> {
            vqi_graph::par::set_thread_cap(cap);
            let set = Tattoo::default().run(&net, &budget);
            vqi_graph::par::set_thread_cap(0);
            let mut codes: Vec<CanonicalCode> =
                set.patterns().iter().map(|p| p.code.clone()).collect();
            codes.sort();
            codes
        };
        let one = codes_at(1);
        assert!(!one.is_empty());
        assert_eq!(one, codes_at(2), "cap 2 changed the selection");
        assert_eq!(one, codes_at(4), "cap 4 changed the selection");
        vqi_graph::par::set_parallel_enabled(false);
        let seq = Tattoo::default().run(&net, &budget);
        vqi_graph::par::set_parallel_enabled(true);
        let mut seq_codes: Vec<CanonicalCode> =
            seq.patterns().iter().map(|p| p.code.clone()).collect();
        seq_codes.sort();
        assert_eq!(one, seq_codes, "sequential toggle changed the selection");
    }

    #[test]
    fn observability_is_identical_across_thread_counts() {
        let _guard = crate::fault_test_lock();
        let mut rng = SmallRng::seed_from_u64(13);
        let net = barabasi_albert(200, 3, 1, &mut rng);
        let budget = PatternBudget::new(5, 4, 6);
        // warm-up fills the kernel caches so every measured run sees
        // the same cache-hit pattern
        Tattoo::default().run(&net, &budget);
        let one = observed_aggregates(1, false, || drop(Tattoo::default().run(&net, &budget)));
        assert!(!one.0.is_empty(), "no spans recorded");
        assert!(one.1.values().sum::<u64>() > 0, "no journal events");
        let two = observed_aggregates(2, false, || drop(Tattoo::default().run(&net, &budget)));
        assert_eq!(one, two, "cap 2 changed the observability output");
        let four = observed_aggregates(4, false, || drop(Tattoo::default().run(&net, &budget)));
        assert_eq!(one, four, "cap 4 changed the observability output");
        let seq = observed_aggregates(0, true, || drop(Tattoo::default().run(&net, &budget)));
        assert_eq!(
            one, seq,
            "sequential toggle changed the observability output"
        );
    }

    /// Runs `work` with metrics and the trace journal armed under the
    /// given thread cap (or the sequential toggle) and returns the
    /// order-normalized aggregates that must be thread-count invariant:
    /// per-name span invocation counts and the journal event multiset.
    /// Durations and `kernel.par.*` dispatch counters legitimately vary
    /// with the worker count and are deliberately excluded.
    fn observed_aggregates(
        cap: usize,
        sequential: bool,
        work: impl FnOnce(),
    ) -> (Vec<(String, u64)>, std::collections::BTreeMap<String, u64>) {
        if sequential {
            vqi_graph::par::set_parallel_enabled(false);
        } else {
            vqi_graph::par::set_thread_cap(cap);
        }
        vqi_observe::reset();
        vqi_observe::set_enabled(true);
        vqi_observe::set_journal_enabled(true);
        vqi_observe::journal_reset();
        work();
        let events = vqi_observe::journal_events();
        let multiset = vqi_observe::event_multiset(&events);
        let mut span_counts: Vec<(String, u64)> = vqi_observe::snapshot()
            .spans
            .iter()
            .map(|(name, h)| (name.clone(), h.count))
            .collect();
        span_counts.sort();
        vqi_observe::set_journal_enabled(false);
        vqi_observe::set_enabled(false);
        vqi_observe::journal_reset();
        vqi_observe::reset();
        if sequential {
            vqi_graph::par::set_parallel_enabled(true);
        } else {
            vqi_graph::par::set_thread_cap(0);
        }
        (span_counts, multiset)
    }

    /// Installs a fault plan and removes it on drop, so a failing
    /// assertion cannot leak the plan into other tests.
    struct PlanGuard;
    fn with_plan(plan: vqi_runtime::fault::FaultPlan) -> PlanGuard {
        vqi_runtime::fault::set_plan(plan);
        PlanGuard
    }
    impl Drop for PlanGuard {
        fn drop(&mut self) {
            vqi_runtime::fault::reset();
        }
    }

    fn codes_in_order(set: &PatternSet) -> Vec<vqi_graph::canon::CanonicalCode> {
        set.patterns().iter().map(|p| p.code.clone()).collect()
    }

    fn test_network() -> Graph {
        let mut rng = SmallRng::seed_from_u64(9);
        barabasi_albert(200, 3, 1, &mut rng)
    }

    #[test]
    fn ctrl_with_unlimited_budget_matches_plain() {
        let _guard = crate::fault_test_lock();
        let net = test_network();
        let budget = PatternBudget::new(5, 4, 6);
        let plain = Tattoo::default().run(&net, &budget);
        let out = Tattoo::default()
            .run_ctrl(&net, &budget, &vqi_core::Budget::unlimited())
            .expect("unlimited budget cannot fail");
        assert!(out.completeness.is_complete());
        assert_eq!(codes_in_order(&plain), codes_in_order(&out.value));
        // a roomy tick quota must not change a single selection either
        let roomy = vqi_core::Budget::unlimited().with_kernel_ticks(1 << 24);
        let out = Tattoo::default()
            .run_ctrl(&net, &budget, &roomy)
            .expect("roomy budget cannot fail");
        assert!(out.completeness.is_complete());
        assert_eq!(codes_in_order(&plain), codes_in_order(&out.value));
    }

    #[test]
    fn tick_quota_degrades_identically_across_thread_counts() {
        let _guard = crate::fault_test_lock();
        let net = test_network();
        let budget = PatternBudget::new(5, 4, 6);
        // a tiny quota trips inside the truss peel itself; the anytime
        // result (empty, with the cut stage recorded) must not depend
        // on the thread cap
        let ctrl = vqi_core::Budget::unlimited().with_kernel_ticks(3);
        let mut runs = Vec::new();
        for cap in [1usize, 2, 4] {
            vqi_graph::par::set_thread_cap(cap);
            let out = Tattoo::default()
                .run_ctrl(&net, &budget, &ctrl)
                .expect("not fail-fast");
            vqi_graph::par::set_thread_cap(0);
            assert!(!out.completeness.is_complete(), "cap {cap} should degrade");
            runs.push((codes_in_order(&out.value), out.completeness));
        }
        assert_eq!(runs[0], runs[1]);
        assert_eq!(runs[0], runs[2]);
    }

    #[test]
    fn canceled_token_stops_the_pipeline_deterministically() {
        let _guard = crate::fault_test_lock();
        let net = test_network();
        let budget = PatternBudget::new(5, 4, 6);
        let token = vqi_core::CancelToken::new();
        token.cancel();
        let ctrl = vqi_core::Budget::unlimited().with_cancel(token);
        let out = Tattoo::default()
            .run_ctrl(&net, &budget, &ctrl)
            .expect("not fail-fast");
        assert!(!out.completeness.is_complete());
        assert!(out.value.is_empty(), "pre-canceled run selects nothing");
    }

    #[test]
    fn injected_stage_timeouts_degrade_without_panicking() {
        let _guard = crate::fault_test_lock();
        let net = test_network();
        let budget = PatternBudget::new(5, 4, 6);
        for seed in [1u64, 2] {
            let mut runs = Vec::new();
            for cap in [1usize, 2, 4] {
                let _plan = with_plan(vqi_runtime::fault::FaultPlan {
                    seed,
                    timeout_rate: 1.0,
                    ..Default::default()
                });
                vqi_graph::par::set_thread_cap(cap);
                let out = Tattoo::default()
                    .run_ctrl(&net, &budget, &vqi_core::Budget::unlimited())
                    .expect("not fail-fast");
                vqi_graph::par::set_thread_cap(0);
                assert!(
                    !out.completeness.is_complete(),
                    "seed {seed} cap {cap}: a total timeout plan must degrade"
                );
                runs.push((codes_in_order(&out.value), out.completeness));
            }
            assert_eq!(runs[0], runs[1], "seed {seed}");
            assert_eq!(runs[0], runs[2], "seed {seed}");
        }
    }

    #[test]
    fn injected_panics_are_contained_and_deterministic() {
        let _guard = crate::fault_test_lock();
        let net = test_network();
        let budget = PatternBudget::new(5, 4, 6);
        for seed in [1u64, 2] {
            let mut runs = Vec::new();
            for cap in [1usize, 2, 4] {
                let _plan = with_plan(vqi_runtime::fault::FaultPlan {
                    seed,
                    panic_rate: 1.0,
                    ..Default::default()
                });
                vqi_graph::par::set_thread_cap(cap);
                let out = Tattoo::default()
                    .run_ctrl(&net, &budget, &vqi_core::Budget::unlimited())
                    .expect("panics must be absorbed, not propagated");
                vqi_graph::par::set_thread_cap(0);
                assert!(!out.completeness.is_complete(), "seed {seed} cap {cap}");
                runs.push((codes_in_order(&out.value), out.completeness));
            }
            assert_eq!(runs[0], runs[1], "seed {seed}");
            assert_eq!(runs[0], runs[2], "seed {seed}");
        }
    }

    #[test]
    fn injected_nan_scores_are_sanitized() {
        let _guard = crate::fault_test_lock();
        let net = test_network();
        let budget = PatternBudget::new(4, 4, 6);
        // reinstall the plan per run: the fired-once registry models
        // transient faults, so a fresh plan is what makes two runs see
        // the same injections
        let plan = vqi_runtime::fault::FaultPlan {
            seed: 9,
            nan_rate: 1.0,
            ..Default::default()
        };
        let _p1 = with_plan(plan);
        let a = Tattoo::default()
            .run_ctrl(&net, &budget, &vqi_core::Budget::unlimited())
            .expect("not fail-fast");
        drop(_p1);
        let _p2 = with_plan(plan);
        let b = Tattoo::default()
            .run_ctrl(&net, &budget, &vqi_core::Budget::unlimited())
            .expect("not fail-fast");
        assert_eq!(codes_in_order(&a.value), codes_in_order(&b.value));
        assert_eq!(a.completeness, b.completeness);
    }

    #[test]
    fn fail_fast_propagates_the_first_fault() {
        let _guard = crate::fault_test_lock();
        let net = test_network();
        let budget = PatternBudget::new(5, 4, 6);
        let _plan = with_plan(vqi_runtime::fault::FaultPlan {
            seed: 3,
            timeout_rate: 1.0,
            ..Default::default()
        });
        let ctrl = vqi_core::Budget::unlimited().with_fail_fast(true);
        let out = Tattoo::default().run_ctrl(&net, &budget, &ctrl);
        assert!(out.is_err(), "fail-fast must propagate the stage fault");
    }
}
