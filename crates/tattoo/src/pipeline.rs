//! The end-to-end TATTOO pipeline.

use crate::candidates::{extract_from_region, ExtractParams};
use crate::select::{greedy_select, score_candidates};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use vqi_core::budget::PatternBudget;
use vqi_core::pattern::PatternSet;
use vqi_core::repo::{GraphCollection, GraphRepository};
use vqi_core::score::QualityWeights;
use vqi_core::selector::PatternSelector;
use vqi_graph::truss::decompose;
use vqi_graph::Graph;

/// TATTOO configuration.
#[derive(Debug, Clone, Copy)]
pub struct TattooConfig {
    /// Truss threshold `k` for the `G_T` / `G_O` split.
    pub truss_k: u32,
    /// Candidate-extraction parameters.
    pub extract: ExtractParams,
    /// Score weights.
    pub weights: QualityWeights,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TattooConfig {
    fn default() -> Self {
        TattooConfig {
            truss_k: 3,
            extract: ExtractParams::default(),
            weights: QualityWeights::default(),
            seed: 0x7A77,
        }
    }
}

/// The TATTOO selector.
#[derive(Debug, Clone, Copy, Default)]
pub struct Tattoo {
    /// Configuration.
    pub config: TattooConfig,
}

impl Tattoo {
    /// A selector with the given configuration.
    pub fn new(config: TattooConfig) -> Self {
        Tattoo { config }
    }

    /// Runs the pipeline on a single network.
    pub fn run(&self, network: &Graph, budget: &PatternBudget) -> PatternSet {
        let _run = vqi_observe::span("tattoo.run");
        let cfg = &self.config;
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        let (gt, go) = {
            let _s = vqi_observe::span("tattoo.truss_decompose");
            let d = decompose(network, cfg.truss_k);
            let (gt, _) = d.infested_graph(network);
            let (go, _) = d.oblivious_graph(network);
            vqi_observe::incr("tattoo.truss.infested_edges", gt.edge_count() as u64);
            vqi_observe::incr("tattoo.truss.oblivious_edges", go.edge_count() as u64);
            (gt, go)
        };
        let cands = {
            let _s = vqi_observe::span("tattoo.candidates");
            let mut cands = extract_from_region(&gt, true, budget, cfg.extract, &mut rng);
            cands.extend(extract_from_region(
                &go,
                false,
                budget,
                cfg.extract,
                &mut rng,
            ));
            vqi_observe::incr("tattoo.candidates.generated", cands.len() as u64);
            // dedup across regions
            let mut seen = std::collections::HashSet::new();
            cands.retain(|c| seen.insert(c.code.clone()));
            vqi_observe::incr("tattoo.candidates.deduped", cands.len() as u64);
            if vqi_observe::enabled() {
                for c in &cands {
                    vqi_observe::count!(format!("tattoo.candidates.class.{:?}", c.class), 1);
                }
            }
            cands
        };
        let scored = {
            let _s = vqi_observe::span("tattoo.score");
            score_candidates(cands, network)
        };
        let _s = vqi_observe::span("tattoo.greedy");
        greedy_select(scored, network.edge_count(), budget, cfg.weights)
    }
}

impl PatternSelector for Tattoo {
    fn name(&self) -> &'static str {
        "tattoo"
    }

    fn select(&self, repo: &GraphRepository, budget: &PatternBudget) -> PatternSet {
        match repo {
            GraphRepository::Network(g) => self.run(g, budget),
            // a collection can be treated as the disjoint union network,
            // though CATAPULT is the intended tool there
            GraphRepository::Collection(c) => {
                let union = disjoint_union(c);
                self.run(&union, budget)
            }
        }
    }
}

/// Disjoint union of all live graphs of a collection.
fn disjoint_union(c: &GraphCollection) -> Graph {
    let mut g = Graph::new();
    for (_, member) in c.iter() {
        let base = g.node_count() as u32;
        for v in member.nodes() {
            g.add_node(member.node_label(v));
        }
        for e in member.edges() {
            let (u, v) = member.endpoints(e);
            g.add_edge(
                vqi_graph::NodeId(base + u.0),
                vqi_graph::NodeId(base + v.0),
                member.edge_label(e),
            );
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use vqi_core::score::{evaluate, set_coverage_network};
    use vqi_graph::generate::{barabasi_albert, chain, cycle};
    use vqi_graph::traversal::is_connected;

    #[test]
    fn selects_valid_patterns_from_ba_network() {
        let mut rng = SmallRng::seed_from_u64(9);
        let net = barabasi_albert(300, 3, 1, &mut rng);
        let budget = PatternBudget::new(6, 4, 6);
        let set = Tattoo::default().run(&net, &budget);
        assert!(!set.is_empty());
        assert!(set.len() <= 6);
        for p in set.patterns() {
            assert!(budget.admits(&p.graph));
            assert!(is_connected(&p.graph));
            assert!(p.provenance.starts_with("tattoo:"));
        }
        // selected patterns must actually cover edges
        let graphs: Vec<&Graph> = set.graphs().collect();
        assert!(set_coverage_network(&graphs, &net) > 0.0);
    }

    #[test]
    fn provenance_records_both_regions() {
        let mut rng = SmallRng::seed_from_u64(10);
        // BA with m=3 has a dense core and tree-ish periphery
        let net = barabasi_albert(400, 3, 1, &mut rng);
        let budget = PatternBudget::new(8, 4, 6);
        let set = Tattoo::default().run(&net, &budget);
        let provs: Vec<&str> = set
            .patterns()
            .iter()
            .map(|p| p.provenance.as_str())
            .collect();
        assert!(
            provs.iter().any(|p| p.ends_with("G_T")),
            "no truss-region pattern in {provs:?}"
        );
    }

    #[test]
    fn beats_random_on_quality() {
        use vqi_core::selector::RandomSelector;
        let mut rng = SmallRng::seed_from_u64(11);
        let net = barabasi_albert(250, 3, 1, &mut rng);
        let repo = GraphRepository::network(net);
        let budget = PatternBudget::new(6, 4, 6);
        let w = QualityWeights::default();
        let tat = evaluate(&Tattoo::default().select(&repo, &budget), &repo, w);
        let rnd = evaluate(&RandomSelector::new(4).select(&repo, &budget), &repo, w);
        assert!(
            tat.score >= rnd.score,
            "tattoo {:.3} < random {:.3}",
            tat.score,
            rnd.score
        );
    }

    #[test]
    fn collection_fallback_works() {
        let repo = GraphRepository::collection(vec![chain(8, 1, 0), cycle(6, 1, 0)]);
        let set = Tattoo::default().select(&repo, &PatternBudget::new(3, 4, 5));
        assert!(!set.is_empty());
    }

    #[test]
    fn deterministic_given_seed() {
        let mut rng = SmallRng::seed_from_u64(12);
        let net = barabasi_albert(150, 2, 1, &mut rng);
        let budget = PatternBudget::new(4, 4, 5);
        let a = Tattoo::default().run(&net, &budget);
        let b = Tattoo::default().run(&net, &budget);
        assert_eq!(a.len(), b.len());
        for (pa, pb) in a.patterns().iter().zip(b.patterns()) {
            assert_eq!(pa.code, pb.code);
        }
    }

    #[test]
    fn selection_is_identical_across_thread_counts() {
        use vqi_graph::canon::CanonicalCode;
        let mut rng = SmallRng::seed_from_u64(13);
        let net = barabasi_albert(200, 3, 1, &mut rng);
        let budget = PatternBudget::new(5, 4, 6);
        let codes_at = |cap: usize| -> Vec<CanonicalCode> {
            vqi_graph::par::set_thread_cap(cap);
            let set = Tattoo::default().run(&net, &budget);
            vqi_graph::par::set_thread_cap(0);
            let mut codes: Vec<CanonicalCode> =
                set.patterns().iter().map(|p| p.code.clone()).collect();
            codes.sort();
            codes
        };
        let one = codes_at(1);
        assert!(!one.is_empty());
        assert_eq!(one, codes_at(2), "cap 2 changed the selection");
        assert_eq!(one, codes_at(4), "cap 4 changed the selection");
        vqi_graph::par::set_parallel_enabled(false);
        let seq = Tattoo::default().run(&net, &budget);
        vqi_graph::par::set_parallel_enabled(true);
        let mut seq_codes: Vec<CanonicalCode> =
            seq.patterns().iter().map(|p| p.code.clone()).collect();
        seq_codes.sort();
        assert_eq!(one, seq_codes, "sequential toggle changed the selection");
    }
}
