//! Partitioned selection for massive networks (§2.5, "Data-driven VQIs
//! for massive networks").
//!
//! The tutorial's scaling direction assumes graphs too large for
//! single-pass processing and calls for a distributed framework. The
//! architecture here is the standard map/reduce decomposition of
//! TATTOO, executed on a thread pool as a stand-in for a cluster (the
//! substitution preserves the algorithmic structure — what runs where —
//! which is what the direction is about; see DESIGN.md §3):
//!
//! * **partition** — nodes are split into locality-preserving parts by
//!   chunking a BFS order, and each part materializes its induced
//!   subgraph;
//! * **map** — each part independently runs the truss split and
//!   shape-typed candidate extraction (embarrassingly parallel, no
//!   shared state);
//! * **reduce** — candidates are deduplicated globally by canonical code
//!   and the standard greedy selection runs against the *full* network's
//!   edge coverage, so the final set is evaluated exactly, not
//!   per-partition.
//!
//! Quality stays close to whole-graph TATTOO because candidate shapes
//! are small and local (a pattern spanning a partition boundary has a
//! near-identical twin inside one part), while the expensive extraction
//! phase parallelizes across parts — experiment E14 measures both.

use crate::candidates::{extract_from_region, Candidate, ExtractParams};
use crate::pipeline::TattooConfig;
use crate::select::ScoredCandidate;
use crate::select::{greedy_select, score_candidates};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use vqi_core::budget::PatternBudget;
use vqi_core::pattern::PatternSet;
use vqi_graph::traversal::bfs_order;
use vqi_graph::truss::decompose;
use vqi_graph::{Graph, NodeId};

/// Partitioned TATTOO.
#[derive(Debug, Clone, Copy)]
pub struct PartitionedTattoo {
    /// Base configuration (truss threshold, weights, seed).
    pub config: TattooConfig,
    /// Number of partitions ("workers").
    pub parts: usize,
}

impl PartitionedTattoo {
    /// A partitioned selector with `parts` workers.
    pub fn new(config: TattooConfig, parts: usize) -> Self {
        assert!(parts >= 1, "need at least one partition");
        PartitionedTattoo { config, parts }
    }

    /// Splits node ids into `parts` contiguous chunks of a BFS order
    /// (covering all components), preserving locality.
    pub fn partition_nodes(&self, g: &Graph) -> Vec<Vec<NodeId>> {
        let _s = vqi_observe::span("tattoo.partition");
        let mut order: Vec<NodeId> = Vec::with_capacity(g.node_count());
        let mut seen = vec![false; g.node_count()];
        for v in g.nodes() {
            if !seen[v.index()] {
                for u in bfs_order(g, v) {
                    seen[u.index()] = true;
                    order.push(u);
                }
            }
        }
        let chunk = order.len().div_ceil(self.parts.max(1)).max(1);
        order.chunks(chunk).map(|c| c.to_vec()).collect()
    }

    /// The map phase: per-partition truss split + candidate extraction,
    /// in parallel, followed by global deduplication. The total sampling
    /// budget is divided across partitions so the aggregate extraction
    /// work matches whole-graph TATTOO's regardless of `parts`.
    pub fn map_candidates(&self, network: &Graph, budget: &PatternBudget) -> Vec<Candidate> {
        let _map = vqi_observe::span("tattoo.map");
        let parts = self.partition_nodes(network);
        vqi_observe::incr("tattoo.map.shards", parts.len() as u64);
        let per_part_extract = ExtractParams {
            samples_per_size: (self.config.extract.samples_per_size / parts.len().max(1)).max(4),
        };
        let per_part: Vec<Vec<Candidate>> = vqi_graph::par::map_range(parts.len(), |pi| {
            let nodes = &parts[pi];
            // per-shard wall time lands in the `tattoo.map.shard`
            // histogram; the gauge tracks shards currently running
            vqi_observe::gauge_add("tattoo.map.in_flight", 1);
            let _shard = vqi_observe::span("tattoo.map.shard");
            let (sub, _) = network.induced_subgraph(nodes);
            let mut rng = SmallRng::seed_from_u64(self.config.seed ^ (pi as u64));
            let d = decompose(&sub, self.config.truss_k);
            let (gt, _) = d.infested_graph(&sub);
            let (go, _) = d.oblivious_graph(&sub);
            let mut cands = extract_from_region(&gt, true, budget, per_part_extract, &mut rng);
            cands.extend(extract_from_region(
                &go,
                false,
                budget,
                per_part_extract,
                &mut rng,
            ));
            vqi_observe::incr("tattoo.map.candidates", cands.len() as u64);
            vqi_observe::gauge_add("tattoo.map.in_flight", -1);
            cands
        });
        let mut seen = std::collections::HashSet::new();
        let mut all: Vec<Candidate> = Vec::new();
        for cands in per_part {
            for c in cands {
                if seen.insert(c.code.clone()) {
                    all.push(c);
                }
            }
        }
        vqi_observe::incr("tattoo.map.deduped", all.len() as u64);
        all
    }

    /// The reduce phase: exact coverage scoring over the full network
    /// plus the standard greedy selection.
    pub fn reduce_select(
        &self,
        candidates: Vec<Candidate>,
        network: &Graph,
        budget: &PatternBudget,
    ) -> PatternSet {
        let _s = vqi_observe::span("tattoo.reduce");
        let scored: Vec<ScoredCandidate> = score_candidates(candidates, network);
        greedy_select(scored, network.edge_count(), budget, self.config.weights)
    }

    /// Runs the partitioned pipeline (map + reduce).
    pub fn run(&self, network: &Graph, budget: &PatternBudget) -> PatternSet {
        let candidates = self.map_candidates(network, budget);
        self.reduce_select(candidates, network, budget)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tattoo;
    use vqi_core::repo::GraphRepository;
    use vqi_core::score::{evaluate_graphs, QualityWeights};
    use vqi_datasets::dblp_like;
    use vqi_graph::traversal::is_connected;

    #[test]
    fn partitions_cover_all_nodes_disjointly() {
        let net = dblp_like(300, 1);
        let p = PartitionedTattoo::new(TattooConfig::default(), 4);
        let parts = p.partition_nodes(&net);
        assert!(parts.len() <= 4 && !parts.is_empty());
        let mut all: Vec<NodeId> = parts.into_iter().flatten().collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), net.node_count());
    }

    #[test]
    fn selection_contract_holds() {
        let net = dblp_like(400, 2);
        let budget = PatternBudget::new(5, 4, 6);
        let set = PartitionedTattoo::new(TattooConfig::default(), 4).run(&net, &budget);
        assert!(!set.is_empty());
        for p in set.patterns() {
            assert!(budget.admits(&p.graph));
            assert!(is_connected(&p.graph));
        }
    }

    #[test]
    fn quality_is_close_to_whole_graph_tattoo() {
        let net = dblp_like(500, 3);
        let budget = PatternBudget::new(6, 4, 6);
        let whole = Tattoo::default().run(&net, &budget);
        let parted = PartitionedTattoo::new(TattooConfig::default(), 4).run(&net, &budget);
        let repo = GraphRepository::network(net);
        let w = QualityWeights::default();
        let qw = {
            let graphs: Vec<&Graph> = whole.graphs().collect();
            evaluate_graphs(&graphs, &repo, w).score
        };
        let qp = {
            let graphs: Vec<&Graph> = parted.graphs().collect();
            evaluate_graphs(&graphs, &repo, w).score
        };
        assert!(
            qp >= 0.8 * qw,
            "partitioned quality {qp:.3} too far below whole-graph {qw:.3}"
        );
    }

    #[test]
    fn single_partition_matches_structure_of_tattoo() {
        let net = dblp_like(200, 4);
        let budget = PatternBudget::new(4, 4, 5);
        let set = PartitionedTattoo::new(TattooConfig::default(), 1).run(&net, &budget);
        assert!(!set.is_empty());
    }
}
