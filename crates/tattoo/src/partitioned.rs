//! Partitioned selection for massive networks (§2.5, "Data-driven VQIs
//! for massive networks").
//!
//! The tutorial's scaling direction assumes graphs too large for
//! single-pass processing and calls for a distributed framework. The
//! architecture here is the standard map/reduce decomposition of
//! TATTOO, executed on a thread pool as a stand-in for a cluster (the
//! substitution preserves the algorithmic structure — what runs where —
//! which is what the direction is about; see DESIGN.md §3):
//!
//! * **partition** — nodes are split into locality-preserving parts by
//!   chunking a BFS order, and each part materializes its induced
//!   subgraph;
//! * **map** — each part independently runs the truss split and
//!   shape-typed candidate extraction (embarrassingly parallel, no
//!   shared state);
//! * **reduce** — candidates are deduplicated globally by canonical code
//!   and the standard greedy selection runs against the *full* network's
//!   edge coverage, so the final set is evaluated exactly, not
//!   per-partition.
//!
//! Quality stays close to whole-graph TATTOO because candidate shapes
//! are small and local (a pattern spanning a partition boundary has a
//! near-identical twin inside one part), while the expensive extraction
//! phase parallelizes across parts — experiment E14 measures both.

use crate::candidates::{extract_from_region, Candidate, ExtractParams};
use crate::pipeline::TattooConfig;
use crate::select::ScoredCandidate;
use crate::select::{greedy_select_ctrl, score_candidates};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use vqi_core::budget::PatternBudget;
use vqi_core::ctrl::{Budget, Degradation, PipelineOutcome};
use vqi_core::pattern::PatternSet;
use vqi_graph::par::ShardExecutor;
use vqi_graph::traversal::bfs_order;
use vqi_graph::truss::decompose;
use vqi_graph::{Graph, NodeId};
use vqi_runtime::{fault, VqiError};

/// Partitioned TATTOO.
#[derive(Debug, Clone, Copy)]
pub struct PartitionedTattoo {
    /// Base configuration (truss threshold, weights, seed).
    pub config: TattooConfig,
    /// Number of partitions ("workers").
    pub parts: usize,
    /// How many times a panicked shard (or the reduce scoring) is
    /// re-executed before it is dropped from the run. A transient
    /// worker failure therefore costs one retry, not the result.
    pub retries: u32,
    /// Base backoff before a retry; attempt `n` waits `2^(n−1)` times
    /// this. Zero disables the wait (retries stay immediate).
    pub retry_backoff_ms: u64,
}

impl PartitionedTattoo {
    /// A partitioned selector with `parts` workers and the default
    /// retry policy (one retry, 5 ms base backoff).
    pub fn new(config: TattooConfig, parts: usize) -> Self {
        assert!(parts >= 1, "need at least one partition");
        PartitionedTattoo {
            config,
            parts,
            retries: 1,
            retry_backoff_ms: 5,
        }
    }

    /// The shard harness this selector runs on: publishes under the
    /// `tattoo.map` prefix (so all retry accounting — including the
    /// reduce stage's — lands on `tattoo.map.retries`, as it always
    /// has) with this selector's retry policy.
    fn executor(&self) -> ShardExecutor {
        ShardExecutor::new("tattoo.map", self.retries, self.retry_backoff_ms)
    }

    /// Splits node ids into `parts` contiguous chunks of a BFS order
    /// (covering all components), preserving locality.
    pub fn partition_nodes(&self, g: &Graph) -> Vec<Vec<NodeId>> {
        let _s = vqi_observe::span("tattoo.partition");
        let mut order: Vec<NodeId> = Vec::with_capacity(g.node_count());
        let mut seen = vec![false; g.node_count()];
        for v in g.nodes() {
            if !seen[v.index()] {
                for u in bfs_order(g, v) {
                    seen[u.index()] = true;
                    order.push(u);
                }
            }
        }
        let chunk = order.len().div_ceil(self.parts.max(1)).max(1);
        order.chunks(chunk).map(|c| c.to_vec()).collect()
    }

    /// The map phase: per-partition truss split + candidate extraction,
    /// in parallel, followed by global deduplication. The total sampling
    /// budget is divided across partitions so the aggregate extraction
    /// work matches whole-graph TATTOO's regardless of `parts`.
    pub fn map_candidates(&self, network: &Graph, budget: &PatternBudget) -> Vec<Candidate> {
        let mut deg = Degradation::new();
        self.map_candidates_impl(network, budget, &Budget::unlimited(), &mut deg)
            .unwrap_or_default()
    }

    /// One shard of the map phase: induced subgraph → truss split →
    /// shape-typed extraction. Pure in `(network, nodes, pi)`, so the
    /// [`ShardExecutor`] can retry a panicked execution (or
    /// speculatively re-execute an injected straggler) with an
    /// identical result.
    fn map_part_body(
        &self,
        network: &Graph,
        nodes: &[NodeId],
        budget: &PatternBudget,
        extract: ExtractParams,
        pi: usize,
    ) -> Vec<Candidate> {
        let (sub, _) = network.induced_subgraph(nodes);
        let mut rng = SmallRng::seed_from_u64(self.config.seed ^ (pi as u64));
        let d = decompose(&sub, self.config.truss_k);
        let (gt, _) = d.infested_graph(&sub);
        let (go, _) = d.oblivious_graph(&sub);
        let mut cands = extract_from_region(&gt, true, budget, extract, &mut rng);
        cands.extend(extract_from_region(&go, false, budget, extract, &mut rng));
        vqi_observe::incr("tattoo.map.candidates", cands.len() as u64);
        cands
    }

    /// Shared body of the plain and budget-aware map phases. Shards
    /// that exhaust their retries are dropped deterministically — the
    /// drop decision depends only on the part index, never on thread
    /// scheduling — and recorded in `deg`.
    fn map_candidates_impl(
        &self,
        network: &Graph,
        budget: &PatternBudget,
        ctrl: &Budget,
        deg: &mut Degradation,
    ) -> Result<Vec<Candidate>, VqiError> {
        let _map = vqi_observe::span("tattoo.map");
        if let Err(e) = ctrl.check("tattoo.map") {
            deg.absorb(ctrl, e)?;
            return Ok(Vec::new());
        }
        let parts = self.partition_nodes(network);
        let per_part_extract = ExtractParams {
            samples_per_size: (self.config.extract.samples_per_size / parts.len().max(1)).max(4),
        };
        let per_part: Vec<Result<Vec<Candidate>, VqiError>> =
            self.executor().run_shards(parts.len(), |pi| {
                self.map_part_body(network, &parts[pi], budget, per_part_extract, pi)
            });
        let mut seen = std::collections::HashSet::new();
        let mut all: Vec<Candidate> = Vec::new();
        for shard in per_part {
            match shard {
                Ok(cands) => {
                    for c in cands {
                        if seen.insert(c.code.clone()) {
                            all.push(c);
                        }
                    }
                }
                Err(e) => {
                    vqi_observe::incr("tattoo.map.shards_dropped", 1);
                    deg.absorb(ctrl, e)?;
                }
            }
        }
        vqi_observe::incr("tattoo.map.deduped", all.len() as u64);
        Ok(all)
    }

    /// The reduce phase: exact coverage scoring over the full network
    /// plus the standard greedy selection.
    pub fn reduce_select(
        &self,
        candidates: Vec<Candidate>,
        network: &Graph,
        budget: &PatternBudget,
    ) -> PatternSet {
        let mut deg = Degradation::new();
        self.reduce_impl(candidates, network, budget, &Budget::unlimited(), &mut deg)
            .unwrap_or_default()
    }

    /// Shared body of the plain and budget-aware reduce phases. The
    /// scoring pass gets the same bounded retry as a map shard; the
    /// greedy selection is anytime on its own.
    fn reduce_impl(
        &self,
        candidates: Vec<Candidate>,
        network: &Graph,
        budget: &PatternBudget,
        ctrl: &Budget,
        deg: &mut Degradation,
    ) -> Result<PatternSet, VqiError> {
        let _s = vqi_observe::span("tattoo.reduce");
        let scored = match ctrl.check("tattoo.reduce").and_then(|()| {
            self.executor().retrying("tattoo.reduce", || {
                fault::maybe_panic("tattoo.reduce", 0);
                score_candidates(candidates.clone(), network)
            })
        }) {
            Ok(s) => s,
            Err(e) => {
                deg.absorb(ctrl, e)?;
                Vec::<ScoredCandidate>::new()
            }
        };
        greedy_select_ctrl(
            scored,
            network.edge_count(),
            budget,
            self.config.weights,
            ctrl,
            deg,
        )
    }

    /// Runs the partitioned pipeline (map + reduce).
    pub fn run(&self, network: &Graph, budget: &PatternBudget) -> PatternSet {
        let candidates = self.map_candidates(network, budget);
        self.reduce_select(candidates, network, budget)
    }

    /// Budget-aware partitioned pipeline: map shards are panic-isolated
    /// with bounded retry (dropped deterministically when retries are
    /// exhausted), the reduce is retried the same way, and the greedy
    /// is anytime. `Err` is returned only under a fail-fast budget.
    pub fn run_ctrl(
        &self,
        network: &Graph,
        budget: &PatternBudget,
        ctrl: &Budget,
    ) -> Result<PipelineOutcome<PatternSet>, VqiError> {
        let mut deg = Degradation::new();
        let candidates = self.map_candidates_impl(network, budget, ctrl, &mut deg)?;
        let set = self.reduce_impl(candidates, network, budget, ctrl, &mut deg)?;
        Ok(deg.finish(set))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tattoo;
    use vqi_core::repo::GraphRepository;
    use vqi_core::score::{evaluate_graphs, QualityWeights};
    use vqi_datasets::dblp_like;
    use vqi_graph::traversal::is_connected;

    #[test]
    fn partitions_cover_all_nodes_disjointly() {
        let _guard = crate::fault_test_lock();
        let net = dblp_like(300, 1);
        let p = PartitionedTattoo::new(TattooConfig::default(), 4);
        let parts = p.partition_nodes(&net);
        assert!(parts.len() <= 4 && !parts.is_empty());
        let mut all: Vec<NodeId> = parts.into_iter().flatten().collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), net.node_count());
    }

    #[test]
    fn selection_contract_holds() {
        let _guard = crate::fault_test_lock();
        let net = dblp_like(400, 2);
        let budget = PatternBudget::new(5, 4, 6);
        let set = PartitionedTattoo::new(TattooConfig::default(), 4).run(&net, &budget);
        assert!(!set.is_empty());
        for p in set.patterns() {
            assert!(budget.admits(&p.graph));
            assert!(is_connected(&p.graph));
        }
    }

    #[test]
    fn quality_is_close_to_whole_graph_tattoo() {
        let _guard = crate::fault_test_lock();
        let net = dblp_like(500, 3);
        let budget = PatternBudget::new(6, 4, 6);
        let whole = Tattoo::default().run(&net, &budget);
        let parted = PartitionedTattoo::new(TattooConfig::default(), 4).run(&net, &budget);
        let repo = GraphRepository::network(net);
        let w = QualityWeights::default();
        let qw = {
            let graphs: Vec<&Graph> = whole.graphs().collect();
            evaluate_graphs(&graphs, &repo, w).score
        };
        let qp = {
            let graphs: Vec<&Graph> = parted.graphs().collect();
            evaluate_graphs(&graphs, &repo, w).score
        };
        assert!(
            qp >= 0.8 * qw,
            "partitioned quality {qp:.3} too far below whole-graph {qw:.3}"
        );
    }

    #[test]
    fn single_partition_matches_structure_of_tattoo() {
        let _guard = crate::fault_test_lock();
        let net = dblp_like(200, 4);
        let budget = PatternBudget::new(4, 4, 5);
        let set = PartitionedTattoo::new(TattooConfig::default(), 1).run(&net, &budget);
        assert!(!set.is_empty());
    }

    /// Installs a fault plan and removes it on drop, so a failing
    /// assertion cannot leak the plan into other tests.
    struct PlanGuard;
    fn with_plan(plan: vqi_runtime::fault::FaultPlan) -> PlanGuard {
        vqi_runtime::fault::set_plan(plan);
        PlanGuard
    }
    impl Drop for PlanGuard {
        fn drop(&mut self) {
            vqi_runtime::fault::reset();
        }
    }

    fn codes_in_order(set: &PatternSet) -> Vec<vqi_graph::canon::CanonicalCode> {
        set.patterns().iter().map(|p| p.code.clone()).collect()
    }

    fn fast_selector() -> PartitionedTattoo {
        let mut p = PartitionedTattoo::new(TattooConfig::default(), 4);
        p.retry_backoff_ms = 0; // keep the fault tests instant
        p
    }

    #[test]
    fn ctrl_with_unlimited_budget_matches_plain() {
        let _guard = crate::fault_test_lock();
        let net = dblp_like(300, 5);
        let budget = PatternBudget::new(5, 4, 6);
        let sel = PartitionedTattoo::new(TattooConfig::default(), 4);
        let plain = sel.run(&net, &budget);
        let out = sel
            .run_ctrl(&net, &budget, &Budget::unlimited())
            .expect("unlimited budget cannot fail");
        assert!(out.completeness.is_complete());
        assert_eq!(codes_in_order(&plain), codes_in_order(&out.value));
    }

    #[test]
    fn crashed_shards_are_retried_to_a_complete_result() {
        let _guard = crate::fault_test_lock();
        let net = dblp_like(300, 5);
        let budget = PatternBudget::new(5, 4, 6);
        let sel = fast_selector();
        let plain = sel.run(&net, &budget);
        // every shard (and the reduce) crashes exactly once; one retry
        // each recovers the full, bit-identical result at any cap
        for seed in [1u64, 2] {
            for cap in [1usize, 2, 4] {
                let _plan = with_plan(vqi_runtime::fault::FaultPlan {
                    seed,
                    panic_rate: 1.0,
                    ..Default::default()
                });
                vqi_graph::par::set_thread_cap(cap);
                let out = sel
                    .run_ctrl(&net, &budget, &Budget::unlimited())
                    .expect("not fail-fast");
                vqi_graph::par::set_thread_cap(0);
                assert!(
                    out.completeness.is_complete(),
                    "seed {seed} cap {cap}: one retry must recover every shard"
                );
                assert_eq!(
                    codes_in_order(&plain),
                    codes_in_order(&out.value),
                    "seed {seed} cap {cap}"
                );
            }
        }
    }

    #[test]
    fn injected_stragglers_are_reexecuted_identically() {
        let _guard = crate::fault_test_lock();
        let net = dblp_like(300, 5);
        let budget = PatternBudget::new(5, 4, 6);
        let sel = fast_selector();
        let plain = sel.run(&net, &budget);
        // a straggler signal on every shard forces speculative
        // re-execution; the shard closures are pure, so the result is
        // unchanged and the run stays Complete
        let _plan = with_plan(vqi_runtime::fault::FaultPlan {
            seed: 7,
            timeout_rate: 1.0,
            ..Default::default()
        });
        let out = sel
            .run_ctrl(&net, &budget, &Budget::unlimited())
            .expect("not fail-fast");
        // the timeout plan also fires on the greedy rounds, so the tail
        // of the selection may be cut — but whatever was selected must
        // be a prefix of the plain selection
        let got = codes_in_order(&out.value);
        let want = codes_in_order(&plain);
        assert_eq!(
            &want[..got.len()],
            &got[..],
            "degraded set must be a prefix"
        );
    }

    #[test]
    fn exhausted_retries_drop_shards_deterministically() {
        let _guard = crate::fault_test_lock();
        let net = dblp_like(300, 5);
        let budget = PatternBudget::new(5, 4, 6);
        let mut sel = fast_selector();
        sel.retries = 0; // permanent worker failure: first crash drops the shard
        for seed in [1u64, 2] {
            let mut runs = Vec::new();
            for cap in [1usize, 2, 4] {
                let _plan = with_plan(vqi_runtime::fault::FaultPlan {
                    seed,
                    panic_rate: 1.0,
                    ..Default::default()
                });
                vqi_graph::par::set_thread_cap(cap);
                let out = sel
                    .run_ctrl(&net, &budget, &Budget::unlimited())
                    .expect("not fail-fast");
                vqi_graph::par::set_thread_cap(0);
                assert!(
                    !out.completeness.is_complete(),
                    "seed {seed} cap {cap}: dropped shards must degrade the run"
                );
                runs.push((codes_in_order(&out.value), out.completeness));
            }
            assert_eq!(runs[0], runs[1], "seed {seed}");
            assert_eq!(runs[0], runs[2], "seed {seed}");
        }
    }

    #[test]
    fn fail_fast_propagates_a_dropped_shard() {
        let _guard = crate::fault_test_lock();
        let net = dblp_like(200, 4);
        let budget = PatternBudget::new(4, 4, 5);
        let mut sel = fast_selector();
        sel.retries = 0;
        let _plan = with_plan(vqi_runtime::fault::FaultPlan {
            seed: 3,
            panic_rate: 1.0,
            ..Default::default()
        });
        let ctrl = Budget::unlimited().with_fail_fast(true);
        let out = sel.run_ctrl(&net, &budget, &ctrl);
        assert!(out.is_err(), "fail-fast must propagate the shard failure");
    }
}
