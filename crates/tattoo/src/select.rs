//! Greedy selection under the pattern-set score, plus the exhaustive
//! optimum used to measure the approximation ratio (experiment E5).
//!
//! The objective decomposes as
//!
//! ```text
//! F(S) = |edges covered by S| / |E|            (monotone submodular)
//!      + w_div · diversity(S)
//!      − w_cog · mean cognitive load(S)
//! ```
//!
//! Greedy selection on the coverage term alone enjoys the Nemhauser–
//! Wolsey–Fisher `1 − 1/e` guarantee; with the bounded diversity and
//! cognitive-load corrections the paper proves a `1/e` bound for its
//! variant. [`exhaustive_best`] brute-forces the optimum on small
//! instances so the bench can report the ratio actually achieved.
//!
//! Like CATAPULT's loop, the greedy here is *incremental*: each
//! candidate keeps a running `max` similarity to the selected set that
//! is folded forward one selected pattern at a time, which is exactly
//! equal to recomputing the maximum from scratch each round.

use crate::candidates::Candidate;
use vqi_core::bitset::BitSet;
use vqi_core::budget::PatternBudget;
use vqi_core::ctrl::{Budget, Degradation};
use vqi_core::pattern::{PatternKind, PatternSet};
use vqi_core::score::{cognitive_load, coverage_match_options, set_score_bitsets, QualityWeights};
use vqi_graph::cache::mcs_similarity_cached_bounded;
use vqi_graph::index::GraphIndex;
use vqi_graph::iso::covered_edges_indexed;
use vqi_graph::par;
use vqi_graph::Graph;
use vqi_runtime::{fault, VqiError};

/// A candidate with its covered-edge bitset over the network.
#[derive(Debug, Clone)]
pub struct ScoredCandidate {
    /// The candidate.
    pub candidate: Candidate,
    /// Bits over network edge ids.
    pub covered: BitSet,
    /// Cached cognitive load.
    pub cognitive_load: f64,
}

/// Computes covered-edge bitsets for all candidates in parallel and drops
/// candidates covering nothing.
pub fn score_candidates(candidates: Vec<Candidate>, network: &Graph) -> Vec<ScoredCandidate> {
    // one label-indexed view of the network, shared by every candidate match
    let idx = GraphIndex::build(network);
    let coverages: Vec<Option<BitSet>> = par::map(&candidates, |c| {
        let edges = covered_edges_indexed(&c.graph, network, &idx, coverage_match_options());
        if edges.is_empty() {
            return None;
        }
        let mut covered = BitSet::new(network.edge_count());
        for e in edges {
            covered.set(e.index());
        }
        Some(covered)
    });
    candidates
        .into_iter()
        .zip(coverages)
        .filter_map(|(c, covered)| {
            Some(ScoredCandidate {
                cognitive_load: cognitive_load(&c.graph),
                candidate: c,
                covered: covered?,
            })
        })
        .collect()
}

/// The full pattern-set score of a set of graphs (used by both the greedy
/// and the exhaustive optimum so the comparison is apples-to-apples).
/// An empty network or empty member set scores 0 — same convention as
/// [`greedy_select`], which selects nothing from an empty network.
pub fn set_score(members: &[&ScoredCandidate], total_edges: usize, weights: QualityWeights) -> f64 {
    let graphs: Vec<&Graph> = members.iter().map(|m| &m.candidate.graph).collect();
    let bitsets: Vec<&BitSet> = members.iter().map(|m| &m.covered).collect();
    set_score_bitsets(&graphs, &bitsets, total_edges, weights)
}

/// Greedy selection of up to `budget.count` candidates maximizing the
/// marginal pattern-set score.
pub fn greedy_select(
    candidates: Vec<ScoredCandidate>,
    total_edges: usize,
    budget: &PatternBudget,
    weights: QualityWeights,
) -> PatternSet {
    // an unlimited budget cannot trip and absorbed notes are dropped,
    // so the ctrl body degenerates to the plain greedy loop
    let mut deg = Degradation::new();
    greedy_select_ctrl(
        candidates,
        total_edges,
        budget,
        weights,
        &Budget::unlimited(),
        &mut deg,
    )
    .unwrap_or_default()
}

/// Budget-aware greedy selection — the **anytime** loop.
///
/// Each round first checks `ctrl`; a tripped deadline/cancel/quota
/// keeps the patterns selected so far (recorded in `deg`) instead of
/// discarding the run. Non-finite candidate scores are sanitized to
/// `-∞` so a NaN loses every comparison instead of winning the argmax
/// under `total_cmp`. Under an unlimited budget with no fault plan the
/// selection is bit-identical to the historical greedy loop.
pub fn greedy_select_ctrl(
    mut candidates: Vec<ScoredCandidate>,
    total_edges: usize,
    budget: &PatternBudget,
    weights: QualityWeights,
    ctrl: &Budget,
    deg: &mut Degradation,
) -> Result<PatternSet, VqiError> {
    let mut set = PatternSet::new();
    if total_edges == 0 {
        return Ok(set);
    }
    let mut covered = BitSet::new(total_edges);
    // running max similarity of candidate i to the selected set (0.0
    // while empty, reproducing the full-diversity first round)
    let mut max_sim: Vec<f64> = vec![0.0; candidates.len()];
    // one meter for the whole selection: with a tick quota of N the
    // loop degrades after exactly N rounds, at any thread count
    let mut meter = ctrl.meter("tattoo.greedy");
    while set.len() < budget.count && !candidates.is_empty() {
        let round = set.len() as u64;
        if let Err(e) = ctrl.check("tattoo.greedy").and_then(|()| meter.tick()) {
            // anytime: keep what is already selected
            deg.absorb(ctrl, e)?;
            break;
        }
        if fault::maybe_timeout("tattoo.greedy", round) {
            deg.absorb(
                ctrl,
                VqiError::DeadlineExceeded {
                    stage: "tattoo.greedy".into(),
                },
            )?;
            break;
        }
        vqi_observe::incr("tattoo.greedy.iterations", 1);
        let mut gains: Vec<f64> = par::map_range(candidates.len(), |i| {
            let c = &candidates[i];
            let gain = c.covered.count_and_not(&covered) as f64 / total_edges as f64;
            let div = 1.0 - max_sim[i];
            gain + weights.diversity * div - weights.cognitive * c.cognitive_load
        });
        for (i, s) in gains.iter_mut().enumerate() {
            // fault site keyed by (round, position) — both are pure
            // functions of the input, never of the thread count
            *s = fault::nan_score("tattoo.greedy.score", (round << 32) | i as u64, *s);
            if !s.is_finite() {
                deg.note(
                    "tattoo.greedy",
                    format!("non-finite score sanitized in round {round}"),
                );
                *s = f64::NEG_INFINITY;
            }
        }
        let (best_idx, &best) = gains
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .expect("nonempty");
        let gains_anything = candidates[best_idx].covered.any_and_not(&covered);
        if best <= 0.0 && !gains_anything {
            break;
        }
        let chosen = candidates.swap_remove(best_idx);
        max_sim.swap_remove(best_idx);
        covered.union_with(&chosen.covered);
        let provenance = format!(
            "tattoo:{:?}:{}",
            chosen.candidate.class,
            if chosen.candidate.from_truss_region {
                "G_T"
            } else {
                "G_O"
            }
        );
        if set
            .insert(
                chosen.candidate.graph.clone(),
                PatternKind::Canned,
                provenance,
            )
            .is_ok()
        {
            vqi_observe::incr("tattoo.greedy.sim_calls", candidates.len() as u64);
            let sims: Vec<f64> = par::map_range(candidates.len(), |i| {
                let c = &candidates[i];
                mcs_similarity_cached_bounded(
                    &c.candidate.graph,
                    &c.candidate.code,
                    &chosen.candidate.graph,
                    &chosen.candidate.code,
                    max_sim[i],
                )
            });
            for (m, s) in max_sim.iter_mut().zip(sims) {
                *m = f64::max(*m, s);
            }
        }
    }
    vqi_observe::incr("tattoo.greedy.selected", set.len() as u64);
    Ok(set)
}

/// Brute-force optimum over all `C(n, k)` candidate subsets of size at
/// most `k`. Exponential — only for tiny instances in experiment E5.
/// Returns `(best score, best subset indices)`.
pub fn exhaustive_best(
    candidates: &[ScoredCandidate],
    total_edges: usize,
    k: usize,
    weights: QualityWeights,
) -> (f64, Vec<usize>) {
    let n = candidates.len();
    assert!(n <= 20, "exhaustive search is for tiny instances only");
    let mut best = (0.0f64, Vec::new());
    // iterate over all bitmasks with ≤ k bits
    for mask in 1u32..(1u32 << n) {
        if mask.count_ones() as usize > k {
            continue;
        }
        let members: Vec<&ScoredCandidate> = (0..n)
            .filter(|&i| mask & (1 << i) != 0)
            .map(|i| &candidates[i])
            .collect();
        let score = set_score(&members, total_edges, weights);
        if score > best.0 {
            best = (score, (0..n).filter(|&i| mask & (1 << i) != 0).collect());
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::classify;
    use vqi_graph::canon::canonical_code;
    use vqi_graph::generate::{chain, clique, cycle, star};
    use vqi_graph::mcs::mcs_similarity;

    fn cand(g: Graph, from_truss: bool) -> Candidate {
        Candidate {
            class: classify(&g),
            code: canonical_code(&g),
            graph: g,
            from_truss_region: from_truss,
        }
    }

    fn network() -> Graph {
        // K4 plus a pendant path of 4 more nodes
        let mut g = clique(4, 1, 0);
        let mut prev = vqi_graph::NodeId(0);
        for _ in 0..4 {
            let v = g.add_node(1);
            g.add_edge(prev, v, 0);
            prev = v;
        }
        g
    }

    /// The pre-incremental greedy: recomputes every candidate's max
    /// similarity to the whole selected set each round. The incremental
    /// loop must match it exactly.
    fn reference_greedy(
        mut candidates: Vec<ScoredCandidate>,
        total_edges: usize,
        budget: &PatternBudget,
        weights: QualityWeights,
    ) -> PatternSet {
        let mut set = PatternSet::new();
        if total_edges == 0 {
            return set;
        }
        let mut covered = BitSet::new(total_edges);
        let mut selected: Vec<ScoredCandidate> = Vec::new();
        while set.len() < budget.count && !candidates.is_empty() {
            let gains: Vec<f64> = candidates
                .iter()
                .map(|c| {
                    let gain = c.covered.count_and_not(&covered) as f64 / total_edges as f64;
                    let div = if selected.is_empty() {
                        1.0
                    } else {
                        1.0 - selected
                            .iter()
                            .map(|s| mcs_similarity(&c.candidate.graph, &s.candidate.graph))
                            .fold(0.0f64, f64::max)
                    };
                    gain + weights.diversity * div - weights.cognitive * c.cognitive_load
                })
                .collect();
            let (best_idx, &best) = gains
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .expect("nonempty");
            let gains_anything = candidates[best_idx].covered.any_and_not(&covered);
            if best <= 0.0 && !gains_anything {
                break;
            }
            let chosen = candidates.swap_remove(best_idx);
            covered.union_with(&chosen.covered);
            let provenance = format!(
                "tattoo:{:?}:{}",
                chosen.candidate.class,
                if chosen.candidate.from_truss_region {
                    "G_T"
                } else {
                    "G_O"
                }
            );
            if set
                .insert(
                    chosen.candidate.graph.clone(),
                    PatternKind::Canned,
                    provenance,
                )
                .is_ok()
            {
                selected.push(chosen);
            }
        }
        set
    }

    #[test]
    fn scoring_drops_non_occurring() {
        let net = network();
        let cands = vec![
            cand(cycle(3, 1, 0), true),
            cand(star(5, 9, 9), false), // wrong labels, occurs nowhere
        ];
        let scored = score_candidates(cands, &net);
        assert_eq!(scored.len(), 1);
    }

    #[test]
    fn greedy_covers_both_regions() {
        let _guard = crate::fault_test_lock();
        let net = network();
        let cands = vec![
            cand(cycle(3, 1, 0), true),  // covers the K4 edges
            cand(chain(4, 1, 0), false), // covers the path (and some clique edges)
        ];
        let scored = score_candidates(cands, &net);
        let set = greedy_select(
            scored,
            net.edge_count(),
            &PatternBudget::new(2, 3, 6),
            QualityWeights::default(),
        );
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn greedy_matches_or_approaches_exhaustive() {
        let _guard = crate::fault_test_lock();
        let net = network();
        let cands = vec![
            cand(cycle(3, 1, 0), true),
            cand(chain(4, 1, 0), false),
            cand(chain(5, 1, 0), false),
            cand(star(3, 1, 0), false),
        ];
        let scored = score_candidates(cands, &net);
        let weights = QualityWeights::default();
        let k = 2;
        let (opt, _) = exhaustive_best(&scored, net.edge_count(), k, weights);
        let greedy = greedy_select(
            scored.clone(),
            net.edge_count(),
            &PatternBudget::new(k, 3, 6),
            weights,
        );
        // recompute greedy's achieved score
        let chosen: Vec<&ScoredCandidate> = greedy
            .patterns()
            .iter()
            .map(|p| {
                scored
                    .iter()
                    .find(|s| s.candidate.code == p.code)
                    .expect("selected from pool")
            })
            .collect();
        let achieved = set_score(&chosen, net.edge_count(), weights);
        assert!(opt > 0.0);
        assert!(
            achieved >= (1.0 - 1.0 / std::f64::consts::E) * opt - 1e-9,
            "greedy {achieved:.4} below (1-1/e)·OPT = {:.4}",
            (1.0 - 1.0 / std::f64::consts::E) * opt
        );
    }

    #[test]
    fn incremental_greedy_matches_reference() {
        let _guard = crate::fault_test_lock();
        let net = network();
        let cands = vec![
            cand(cycle(3, 1, 0), true),
            cand(chain(4, 1, 0), false),
            cand(chain(5, 1, 0), false),
            cand(star(3, 1, 0), false),
            cand(star(4, 1, 0), false),
            cand(chain(3, 1, 0), false),
        ];
        for count in 1..=4 {
            let scored = score_candidates(cands.clone(), &net);
            let budget = PatternBudget::new(count, 3, 6);
            let weights = QualityWeights::default();
            let incremental = greedy_select(scored.clone(), net.edge_count(), &budget, weights);
            let reference = reference_greedy(scored, net.edge_count(), &budget, weights);
            assert_eq!(incremental.len(), reference.len(), "count {count}");
            for p in reference.patterns() {
                assert!(
                    incremental.contains_isomorphic(&p.graph),
                    "count {count}: reference pick missing from incremental set"
                );
            }
        }
    }

    #[test]
    fn bound_and_skip_changes_no_selection() {
        let _guard = crate::fault_test_lock();
        let net = network();
        let cands = vec![
            cand(cycle(3, 1, 0), true),
            cand(chain(4, 1, 0), false),
            cand(chain(5, 1, 0), false),
            cand(star(3, 1, 0), false),
            cand(star(4, 1, 0), false),
            cand(chain(3, 1, 0), false),
        ];
        for count in 1..=4 {
            let scored = score_candidates(cands.clone(), &net);
            let budget = PatternBudget::new(count, 3, 6);
            let weights = QualityWeights::default();
            vqi_graph::mcs::set_bound_skip_enabled(true);
            let bounded = greedy_select(scored.clone(), net.edge_count(), &budget, weights);
            vqi_graph::mcs::set_bound_skip_enabled(false);
            let exact = greedy_select(scored, net.edge_count(), &budget, weights);
            vqi_graph::mcs::set_bound_skip_enabled(true);
            assert_eq!(bounded.len(), exact.len(), "count {count}");
            for p in exact.patterns() {
                assert!(
                    bounded.contains_isomorphic(&p.graph),
                    "count {count}: exact pick missing from bounded selection"
                );
            }
        }
    }

    #[test]
    fn non_finite_scores_do_not_panic() {
        let _guard = crate::fault_test_lock();
        let net = network();
        let cands = vec![
            cand(cycle(3, 1, 0), true),
            cand(chain(4, 1, 0), false),
            cand(star(3, 1, 0), false),
        ];
        let scored = score_candidates(cands, &net);
        // inf − inf = NaN marginal scores after the first pick; the old
        // partial_cmp().expect("finite") panicked here
        let weights = QualityWeights {
            diversity: f64::INFINITY,
            cognitive: f64::INFINITY,
        };
        let a = greedy_select(
            scored.clone(),
            net.edge_count(),
            &PatternBudget::new(2, 3, 6),
            weights,
        );
        let b = greedy_select(
            scored,
            net.edge_count(),
            &PatternBudget::new(2, 3, 6),
            weights,
        );
        assert_eq!(a.len(), b.len());
        for p in a.patterns() {
            assert!(b.contains_isomorphic(&p.graph));
        }
    }

    #[test]
    fn empty_network_selects_nothing() {
        let _guard = crate::fault_test_lock();
        let set = greedy_select(
            vec![],
            0,
            &PatternBudget::default(),
            QualityWeights::default(),
        );
        assert!(set.is_empty());
    }

    #[test]
    fn empty_network_set_score_is_zero() {
        // unified convention: empty repository scores 0 (the old
        // total_edges.max(1) denominator could produce a positive score
        // for an empty network)
        let net = network();
        let scored = score_candidates(vec![cand(cycle(3, 1, 0), true)], &net);
        let members: Vec<&ScoredCandidate> = scored.iter().collect();
        // members carry bitsets sized to the real network; an empty
        // network has no candidates at all, so score the empty repo with
        // an empty member list
        assert_eq!(set_score(&[], 0, QualityWeights::default()), 0.0);
        assert_eq!(
            set_score(&[], net.edge_count(), QualityWeights::default()),
            0.0
        );
        assert!(set_score(&members, net.edge_count(), QualityWeights::default()) > 0.0);
    }
}
