//! Topology classes of real-world visual queries.
//!
//! Bonifati, Martens & Timm's analysis of hundreds of millions of SPARQL
//! queries (PVLDB 2017) found that user queries overwhelmingly take a
//! handful of shapes: chains and stars dominate, trees and shapes with a
//! single cycle (cycles, petals, flowers) make up most of the rest, and
//! denser triangle-rich shapes form a small tail. TATTOO uses this shape
//! vocabulary to type its candidates, and the workload generator uses the
//! same distribution so simulated users draw realistic queries.
//!
//! The exact percentages here are a coarse approximation of that paper's
//! reported statistics (see DESIGN.md §3 on the query-log substitution).

use serde::Serialize;
use vqi_graph::{Graph, NodeId};

/// Shape class of a small connected graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum TopologyClass {
    /// A simple path.
    Chain,
    /// One center adjacent to all other (degree-1) nodes.
    Star,
    /// Any other acyclic shape.
    Tree,
    /// A single cycle covering every node.
    Cycle,
    /// Two endpoints joined by ≥ 2 internally disjoint paths (one
    /// non-spanning cycle through two "hub" nodes), triangle-free.
    Petal,
    /// Cycles hanging off a shared node, triangle-free.
    Flower,
    /// Contains at least one triangle.
    TriangleCluster,
    /// Anything else (multi-cyclic, triangle-free).
    Other,
}

/// Approximate shape distribution of real query logs: `(class, weight)`.
/// Weights sum to 1.
pub const QUERY_LOG_DISTRIBUTION: &[(TopologyClass, f64)] = &[
    (TopologyClass::Chain, 0.45),
    (TopologyClass::Star, 0.25),
    (TopologyClass::Tree, 0.12),
    (TopologyClass::Cycle, 0.06),
    (TopologyClass::Petal, 0.04),
    (TopologyClass::Flower, 0.03),
    (TopologyClass::TriangleCluster, 0.05),
];

/// True if `g` contains a triangle.
pub fn has_triangle(g: &Graph) -> bool {
    vqi_graph::truss::edge_supports(g).iter().any(|&s| s > 0)
}

/// Classifies a connected graph into its [`TopologyClass`].
/// Disconnected or empty graphs return [`TopologyClass::Other`].
pub fn classify(g: &Graph) -> TopologyClass {
    let n = g.node_count();
    let m = g.edge_count();
    if n == 0 || !vqi_graph::traversal::is_connected(g) {
        return TopologyClass::Other;
    }
    let degrees: Vec<usize> = g.nodes().map(|v| g.degree(v)).collect();
    let max_deg = degrees.iter().copied().max().unwrap_or(0);
    if m + 1 == n {
        // acyclic
        if max_deg <= 2 {
            return TopologyClass::Chain;
        }
        let internal = degrees.iter().filter(|&&d| d > 1).count();
        if internal == 1 {
            return TopologyClass::Star;
        }
        return TopologyClass::Tree;
    }
    if has_triangle(g) {
        return TopologyClass::TriangleCluster;
    }
    if m == n && max_deg == 2 {
        return TopologyClass::Cycle;
    }
    // triangle-free, cyclic: petal if exactly two nodes exceed degree 2
    // and removing them leaves only paths; flower if exactly one node
    // carries all the cycles
    let hubs: Vec<NodeId> = g.nodes().filter(|&v| g.degree(v) > 2).collect();
    match hubs.len() {
        0 => {
            // degree ≤ 2 everywhere with m > n-1 but not a single cycle:
            // only possible for m == n and disconnected (excluded), so
            // treat as Other defensively
            TopologyClass::Other
        }
        1 => {
            // cycles share the single hub: every non-hub node has degree 2
            // in a flower
            let hub = hubs[0];
            let ok = g.nodes().filter(|&v| v != hub).all(|v| g.degree(v) <= 2);
            // flower hubs have even degree (each petal contributes 2)
            if ok && g.degree(hub).is_multiple_of(2) {
                TopologyClass::Flower
            } else {
                TopologyClass::Other
            }
        }
        2 => {
            let (s, t) = (hubs[0], hubs[1]);
            let ok = g
                .nodes()
                .filter(|&v| v != s && v != t)
                .all(|v| g.degree(v) == 2);
            if ok && g.degree(s) == g.degree(t) {
                TopologyClass::Petal
            } else {
                TopologyClass::Other
            }
        }
        _ => TopologyClass::Other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vqi_graph::generate as gen;

    #[test]
    fn classify_canonical_shapes() {
        assert_eq!(classify(&gen::chain(5, 0, 0)), TopologyClass::Chain);
        assert_eq!(classify(&gen::star(4, 0, 0)), TopologyClass::Star);
        assert_eq!(classify(&gen::cycle(5, 0, 0)), TopologyClass::Cycle);
        assert_eq!(
            classify(&gen::cycle(3, 0, 0)),
            TopologyClass::TriangleCluster
        );
        assert_eq!(classify(&gen::petal(3, 2, 0, 0)), TopologyClass::Petal);
        assert_eq!(classify(&gen::flower(3, 4, 0, 0)), TopologyClass::Flower);
        assert_eq!(
            classify(&gen::clique(4, 0, 0)),
            TopologyClass::TriangleCluster
        );
        assert_eq!(
            classify(&gen::tailed_triangle(2, 0, 0)),
            TopologyClass::TriangleCluster
        );
    }

    #[test]
    fn tree_that_is_neither_chain_nor_star() {
        // a "spider" with two branch nodes
        let mut g = gen::star(2, 0, 0);
        let leaf = NodeId(1);
        let a = g.add_node(0);
        let b = g.add_node(0);
        g.add_edge(leaf, a, 0);
        g.add_edge(leaf, b, 0);
        assert_eq!(classify(&g), TopologyClass::Tree);
    }

    #[test]
    fn petal_with_two_paths_is_cycle_shape() {
        // petal(2, 1) is C4: no hub exceeds degree 2, classified as Cycle
        assert_eq!(classify(&gen::petal(2, 1, 0, 0)), TopologyClass::Cycle);
    }

    #[test]
    fn degenerate_inputs_are_other() {
        assert_eq!(classify(&Graph::new()), TopologyClass::Other);
        let mut g = Graph::new();
        g.add_node(0);
        g.add_node(0);
        assert_eq!(classify(&g), TopologyClass::Other);
    }

    #[test]
    fn singleton_is_chain() {
        let mut g = Graph::new();
        g.add_node(0);
        assert_eq!(classify(&g), TopologyClass::Chain);
    }

    #[test]
    fn distribution_sums_to_one() {
        let total: f64 = QUERY_LOG_DISTRIBUTION.iter().map(|(_, w)| w).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }
}
