//! Shape-typed candidate extraction from the truss regions.
//!
//! The truss-oblivious region `G_O` is (near-)forest-like, so it yields
//! the tree shapes users draw most: chains via random walks, stars around
//! high-degree nodes, and general trees via random BFS expansion. The
//! truss-infested region `G_T` yields the triangle-rich and cyclic
//! shapes. All candidates are connected subgraphs of the *original*
//! network restricted to the respective region's edges, deduplicated by
//! canonical code and tagged with their [`TopologyClass`].

use crate::topology::{classify, TopologyClass};
use rand::seq::SliceRandom;
use rand::Rng;
use vqi_core::budget::PatternBudget;
use vqi_graph::canon::{canonical_codes, CanonicalCode};
use vqi_graph::traversal::{is_connected, sample_connected_nodes, weighted_random_walk};
use vqi_graph::{Graph, NodeId};

/// A shape-typed candidate pattern.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// The candidate pattern graph.
    pub graph: Graph,
    /// Canonical code for dedup.
    pub code: CanonicalCode,
    /// Shape class.
    pub class: TopologyClass,
    /// Which region it came from.
    pub from_truss_region: bool,
}

/// Extraction parameters.
#[derive(Debug, Clone, Copy)]
pub struct ExtractParams {
    /// Sampling attempts per region per size.
    pub samples_per_size: usize,
}

impl Default for ExtractParams {
    fn default() -> Self {
        ExtractParams {
            samples_per_size: 40,
        }
    }
}

/// Extracts chain candidates from `region` by random walks.
fn chains<R: Rng>(
    region: &Graph,
    budget: &PatternBudget,
    attempts: usize,
    rng: &mut R,
    out: &mut Vec<Graph>,
) {
    let nodes: Vec<NodeId> = region.nodes().filter(|&v| region.degree(v) > 0).collect();
    if nodes.is_empty() {
        return;
    }
    for _ in 0..attempts {
        let &start = nodes.choose(rng).expect("nonempty");
        let len = rng.gen_range(budget.min_size..=budget.max_size) - 1;
        let walk = weighted_random_walk(region, start, len, &|_| 1.0, rng);
        if walk.len() == len {
            let (sub, _) = region.edge_subgraph(&walk);
            // a walk may revisit nodes; keep only genuine chains
            if sub.node_count() == len + 1 {
                out.push(sub);
            }
        }
    }
}

/// Extracts star candidates around high-degree nodes of `region`.
fn stars<R: Rng>(
    region: &Graph,
    budget: &PatternBudget,
    attempts: usize,
    rng: &mut R,
    out: &mut Vec<Graph>,
) {
    let mut hubs: Vec<NodeId> = region
        .nodes()
        .filter(|&v| region.degree(v) + 1 >= budget.min_size)
        .collect();
    hubs.sort_by_key(|&v| std::cmp::Reverse(region.degree(v)));
    hubs.truncate(attempts.max(4));
    for &hub in &hubs {
        let leaves_wanted = rng
            .gen_range(budget.min_size..=budget.max_size)
            .saturating_sub(1)
            .min(region.degree(hub));
        let mut nbr_edges: Vec<vqi_graph::EdgeId> = region.neighbors(hub).map(|(_, e)| e).collect();
        nbr_edges.shuffle(rng);
        nbr_edges.truncate(leaves_wanted);
        let (sub, _) = region.edge_subgraph(&nbr_edges);
        if budget.admits(&sub) {
            out.push(sub);
        }
    }
}

/// Extracts general connected samples (trees from sparse regions,
/// triangle clusters and cyclic shapes from dense regions).
fn connected_samples<R: Rng>(
    region: &Graph,
    budget: &PatternBudget,
    attempts: usize,
    rng: &mut R,
    out: &mut Vec<Graph>,
) {
    let nodes: Vec<NodeId> = region.nodes().filter(|&v| region.degree(v) > 0).collect();
    if nodes.is_empty() {
        return;
    }
    for _ in 0..attempts {
        let &start = nodes.choose(rng).expect("nonempty");
        let size = rng.gen_range(budget.min_size..=budget.max_size);
        if let Some(ns) = sample_connected_nodes(region, start, size, rng) {
            let (sub, _) = region.induced_subgraph(&ns);
            if is_connected(&sub) && budget.admits(&sub) {
                out.push(sub);
            }
        }
    }
}

/// Extracts deduplicated, shape-typed candidates from one region.
///
/// Sampling is sequential (it consumes the caller's RNG stream);
/// canonicalization — the dominant cost — is batched over the admitted
/// samples via [`canonical_codes`] (parallel, order-stable), and the
/// dedup then runs in sampling order, so the result is identical to the
/// one-code-at-a-time loop it replaces.
pub fn extract_from_region<R: Rng>(
    region: &Graph,
    from_truss_region: bool,
    budget: &PatternBudget,
    params: ExtractParams,
    rng: &mut R,
) -> Vec<Candidate> {
    let mut raw: Vec<Graph> = Vec::new();
    chains(region, budget, params.samples_per_size, rng, &mut raw);
    stars(region, budget, params.samples_per_size / 2, rng, &mut raw);
    connected_samples(region, budget, params.samples_per_size, rng, &mut raw);
    raw.retain(|g| budget.admits(g) && is_connected(g));
    let codes = canonical_codes(&raw);
    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::new();
    for (g, code) in raw.into_iter().zip(codes) {
        if seen.insert(code.clone()) {
            out.push(Candidate {
                class: classify(&g),
                graph: g,
                code,
                from_truss_region,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use vqi_graph::generate::{barabasi_albert, random_tree};
    use vqi_graph::truss::decompose;

    #[test]
    fn sparse_region_yields_tree_shapes() {
        let mut rng = SmallRng::seed_from_u64(1);
        let tree = random_tree(120, 1, &mut rng);
        let budget = PatternBudget::new(8, 4, 6);
        let cands = extract_from_region(&tree, false, &budget, ExtractParams::default(), &mut rng);
        assert!(!cands.is_empty());
        for c in &cands {
            assert!(matches!(
                c.class,
                TopologyClass::Chain | TopologyClass::Star | TopologyClass::Tree
            ));
            assert!(budget.admits(&c.graph));
            assert!(!c.from_truss_region);
        }
        // chains AND stars should both appear in a sizable tree
        assert!(cands.iter().any(|c| c.class == TopologyClass::Chain));
        assert!(cands.iter().any(|c| c.class == TopologyClass::Star));
    }

    #[test]
    fn dense_region_yields_triangle_shapes() {
        let mut rng = SmallRng::seed_from_u64(2);
        let net = barabasi_albert(150, 4, 1, &mut rng);
        let d = decompose(&net, 3);
        let (gt, _) = d.infested_graph(&net);
        let budget = PatternBudget::new(8, 4, 6);
        let cands = extract_from_region(&gt, true, &budget, ExtractParams::default(), &mut rng);
        assert!(!cands.is_empty());
        assert!(
            cands
                .iter()
                .any(|c| c.class == TopologyClass::TriangleCluster),
            "dense region should yield triangle clusters"
        );
    }

    #[test]
    fn candidates_are_unique() {
        let mut rng = SmallRng::seed_from_u64(3);
        let net = barabasi_albert(80, 3, 1, &mut rng);
        let budget = PatternBudget::new(8, 4, 5);
        let cands = extract_from_region(&net, true, &budget, ExtractParams::default(), &mut rng);
        let mut codes: Vec<&CanonicalCode> = cands.iter().map(|c| &c.code).collect();
        let before = codes.len();
        codes.sort();
        codes.dedup();
        assert_eq!(before, codes.len());
    }

    #[test]
    fn empty_region_yields_nothing() {
        let mut rng = SmallRng::seed_from_u64(4);
        let cands = extract_from_region(
            &Graph::new(),
            false,
            &PatternBudget::default(),
            ExtractParams::default(),
            &mut rng,
        );
        assert!(cands.is_empty());
    }
}
