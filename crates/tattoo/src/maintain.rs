//! Canned-pattern maintenance for large networks — the open problem of
//! §2.5 ("Data-driven VQI maintenance for large networks"), implemented
//! here as a TATTOO-native analogue of MIDAS.
//!
//! Large networks evolve continuously (edge streams), unlike
//! periodically-updated collections, so maintenance is driven by **edge
//! batches** and locality:
//!
//! 1. the update is applied (the network is rebuilt without removed
//!    edges and with additions — cheap relative to re-selection);
//! 2. the *churn rate* (changed edges / current edges) plays the role of
//!    MIDAS's GFD drift: below the threshold the modification is minor
//!    and only the coverage bitsets are refreshed;
//! 3. on a major modification, fresh candidates are extracted **only
//!    from the touched region** — the induced subgraph within one hop of
//!    any endpoint of a changed edge, split by local trussness — rather
//!    than from the whole network;
//! 4. a swap pass replaces existing patterns when that grows the
//!    covered-edge union and strictly improves the pattern-set score, so
//!    the maintained set never scores worse than the stale one.

use crate::candidates::{extract_from_region, ExtractParams};
use crate::pipeline::TattooConfig;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::Serialize;
use vqi_core::bitset::BitSet;
use vqi_core::budget::PatternBudget;
use vqi_core::pattern::PatternSet;
use vqi_core::score::{coverage_match_options, set_score_bitsets, QualityWeights};
use vqi_graph::cache::{covered_edges_cached_indexed, mint_target_token};
use vqi_graph::canon::CanonicalCode;
use vqi_graph::graphlet::{euclidean_distance, CensusMaintainer, GRAPHLET_CLASSES};
use vqi_graph::index::GraphIndex;
use vqi_graph::par;
use vqi_graph::truss::{TrussDecomposition, TrussMaintainer};
use vqi_graph::{EdgeDelta, Graph, Label, NodeId};

/// A batch of edge-level changes to the network.
#[derive(Debug, Clone, Default)]
pub struct EdgeBatch {
    /// Labels of nodes to append (their ids continue the current space).
    pub node_additions: Vec<Label>,
    /// Edges to add, as (u, v, label) over the post-append node space.
    pub edge_additions: Vec<(u32, u32, Label)>,
    /// Edges to remove, as unordered (u, v) node pairs.
    pub edge_removals: Vec<(u32, u32)>,
}

impl EdgeBatch {
    /// True if nothing changes.
    pub fn is_empty(&self) -> bool {
        self.node_additions.is_empty()
            && self.edge_additions.is_empty()
            && self.edge_removals.is_empty()
    }
}

/// Kind of modification a batch caused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum NetworkModification {
    /// Churn below threshold: bitsets refreshed, patterns kept.
    Minor,
    /// Churn at/above threshold: localized candidate extraction + swaps.
    Major,
}

/// Report of one maintenance pass.
#[derive(Debug, Clone, Serialize)]
pub struct NetworkMaintenanceReport {
    /// Minor or major.
    pub modification: NetworkModification,
    /// changed edges / pre-update edge count.
    pub churn: f64,
    /// Accepted swaps.
    pub swaps: usize,
    /// Candidates extracted from the touched region.
    pub candidates: usize,
    /// Nodes in the touched region.
    pub touched_nodes: usize,
    /// Euclidean distance between the network's graphlet distributions
    /// before and after the batch (incrementally maintained census).
    pub graphlet_drift: f64,
    /// Edges the incremental k-truss maintainer re-peeled for this
    /// batch — the affected region, not the whole network.
    pub truss_region_edges: usize,
}

/// Maintainer configuration.
#[derive(Debug, Clone, Copy)]
pub struct MaintainConfig {
    /// Churn threshold separating minor from major modifications.
    pub churn_threshold: f64,
    /// Truss threshold for splitting the touched region.
    pub truss_k: u32,
    /// Extraction parameters for the touched region.
    pub extract: ExtractParams,
    /// Swap scans.
    pub swap_scans: usize,
    /// Score weights.
    pub weights: QualityWeights,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MaintainConfig {
    fn default() -> Self {
        let t = TattooConfig::default();
        MaintainConfig {
            churn_threshold: 0.02,
            truss_k: t.truss_k,
            extract: ExtractParams {
                samples_per_size: 25,
            },
            swap_scans: 6,
            weights: t.weights,
            seed: t.seed ^ 0xFACE,
        }
    }
}

/// The network maintainer: owns the evolving network and the maintained
/// pattern set.
pub struct NetworkMaintainer {
    config: MaintainConfig,
    budget: PatternBudget,
    /// The current network.
    pub network: Graph,
    /// The maintained canned patterns.
    pub patterns: PatternSet,
    /// Covered-edge bitsets per pattern, over the current network.
    bitsets: Vec<BitSet>,
    /// Kernel-cache token of the current network build; reminted on
    /// every rebuild so stale cached embeddings can never be replayed.
    network_token: u64,
    /// Label index over the current network, rebuilt alongside the token
    /// so every coverage match goes through the indexed kernel.
    network_index: GraphIndex,
    /// Incrementally maintained k-truss of the current network: batch
    /// updates re-peel only the affected region, and the major-path
    /// region split reads maintained trussness instead of re-peeling.
    truss: TrussMaintainer,
    /// Incrementally maintained graphlet census of the current network,
    /// used to report per-batch structural drift.
    census: CensusMaintainer,
}

fn bitset_for(
    p: &Graph,
    code: &CanonicalCode,
    network: &Graph,
    token: u64,
    idx: &GraphIndex,
) -> BitSet {
    let mut bits = BitSet::new(network.edge_count());
    for e in covered_edges_cached_indexed(p, code, network, token, idx, coverage_match_options()) {
        bits.set(e.index());
    }
    bits
}

impl NetworkMaintainer {
    /// Wraps an initial network with an already-selected pattern set
    /// (typically TATTOO's output).
    pub fn new(
        network: Graph,
        patterns: PatternSet,
        budget: PatternBudget,
        config: MaintainConfig,
    ) -> Self {
        let network_token = mint_target_token();
        let network_index = GraphIndex::build(&network);
        let bitsets = par::map(patterns.patterns(), |p| {
            bitset_for(&p.graph, &p.code, &network, network_token, &network_index)
        });
        let truss = TrussMaintainer::new(&network);
        let census = CensusMaintainer::new(&network);
        NetworkMaintainer {
            config,
            budget,
            network,
            patterns,
            bitsets,
            network_token,
            network_index,
            truss,
            census,
        }
    }

    /// Kernel-cache token of the current network build. Reminted on
    /// every [`Self::apply_batch`], so cached match results from before
    /// a mutation can never be replayed against the mutated network.
    pub fn network_token(&self) -> u64 {
        self.network_token
    }

    /// The incrementally maintained graphlet frequency distribution of
    /// the current network.
    pub fn graphlet_distribution(&self) -> [f64; GRAPHLET_CLASSES] {
        self.census.distribution()
    }

    /// Current pattern-set score on the current network.
    pub fn score(&self) -> f64 {
        let graphs: Vec<&Graph> = self.patterns.graphs().collect();
        let bitsets: Vec<&BitSet> = self.bitsets.iter().collect();
        set_score_bitsets(
            &graphs,
            &bitsets,
            self.network.edge_count(),
            self.config.weights,
        )
    }

    /// Applies an edge batch and maintains the pattern set.
    pub fn apply_batch(&mut self, batch: EdgeBatch) -> NetworkMaintenanceReport {
        let pre_edges = self.network.edge_count().max(1);
        let changed = batch.edge_additions.len() + batch.edge_removals.len();
        let churn = changed as f64 / pre_edges as f64;
        let gfd_before = self.census.distribution();

        // 1. rebuild the network with the batch applied, recording the
        // effective mutations (removals that hit a live edge, additions
        // the graph accepted) as the delta the incremental kernels see
        let removals: std::collections::HashSet<(u32, u32)> = batch
            .edge_removals
            .iter()
            .map(|&(a, b)| if a <= b { (a, b) } else { (b, a) })
            .collect();
        let mut touched: Vec<NodeId> = Vec::new();
        let mut delta = EdgeDelta::new();
        let mut next = Graph::with_capacity(
            self.network.node_count() + batch.node_additions.len(),
            self.network.edge_count() + batch.edge_additions.len(),
        );
        for v in self.network.nodes() {
            next.add_node(self.network.node_label(v));
        }
        for &l in &batch.node_additions {
            next.add_node(l);
        }
        for e in self.network.edges() {
            let (u, v) = self.network.endpoints(e);
            let key = if u.0 <= v.0 { (u.0, v.0) } else { (v.0, u.0) };
            if removals.contains(&key) {
                touched.push(u);
                touched.push(v);
                delta.deletes.push(key);
            } else {
                next.add_edge(u, v, self.network.edge_label(e));
            }
        }
        for &(u, v, l) in &batch.edge_additions {
            if next.add_edge(NodeId(u), NodeId(v), l).is_some() {
                touched.push(NodeId(u));
                touched.push(NodeId(v));
                delta.inserts.push((u, v));
            }
        }
        self.network = next;
        self.network_token = mint_target_token();
        self.network_index = GraphIndex::build(&self.network);
        touched.sort_unstable();
        touched.dedup();

        // incremental kernels: grow to the appended node space, then
        // re-peel / re-count only what the delta touched
        let n = self.network.node_count();
        self.truss.grow_nodes(n);
        self.census.grow_nodes(n);
        let truss_stats = self.truss.apply(&delta);
        self.census.apply(&delta);
        let graphlet_drift = euclidean_distance(&gfd_before, &self.census.distribution());

        // 2. bitsets must reflect the new network in either case
        let token = self.network_token;
        let network_ref = &self.network;
        let idx = &self.network_index;
        self.bitsets = par::map(self.patterns.patterns(), |p| {
            bitset_for(&p.graph, &p.code, network_ref, token, idx)
        });

        if churn < self.config.churn_threshold || touched.is_empty() {
            return NetworkMaintenanceReport {
                modification: NetworkModification::Minor,
                churn,
                swaps: 0,
                candidates: 0,
                touched_nodes: touched.len(),
                graphlet_drift,
                truss_region_edges: truss_stats.region_edges,
            };
        }

        // 3. touched region: one hop around the changed endpoints
        let mut region_nodes: Vec<NodeId> = touched.clone();
        for &v in &touched {
            region_nodes.extend(self.network.neighbors(v).map(|(u, _)| u));
        }
        region_nodes.sort_unstable();
        region_nodes.dedup();
        let (region, node_map) = self.network.induced_subgraph(&region_nodes);

        // 4. shape-typed candidates from the region, split by the
        // *maintained* trussness: the incremental maintainer already
        // knows every edge's trussness in the full network, so the
        // split costs one lookup per region edge instead of a re-peel
        // (and classifies by global trussness, not the region-local
        // values a standalone peel of the small region would produce)
        let mut rng = SmallRng::seed_from_u64(self.config.seed);
        let mut region_truss = vec![0u32; region.edge_count()];
        let (mut infested_edges, mut oblivious_edges) = (Vec::new(), Vec::new());
        for e in region.edges() {
            let (ru, rv) = region.endpoints(e);
            let t = self
                .truss
                .trussness_of(node_map[ru.index()], node_map[rv.index()])
                .unwrap_or(0);
            region_truss[e.index()] = t;
            if t >= self.config.truss_k {
                infested_edges.push(e);
            } else {
                oblivious_edges.push(e);
            }
        }
        let d = TrussDecomposition {
            trussness: region_truss,
            k: self.config.truss_k,
            infested_edges,
            oblivious_edges,
        };
        let (gt, _) = d.infested_graph(&region);
        let (go, _) = d.oblivious_graph(&region);
        let mut cands = extract_from_region(&gt, true, &self.budget, self.config.extract, &mut rng);
        cands.extend(extract_from_region(
            &go,
            false,
            &self.budget,
            self.config.extract,
            &mut rng,
        ));
        let mut seen = std::collections::HashSet::new();
        cands.retain(|c| seen.insert(c.code.clone()));
        cands.retain(|c| !self.patterns.contains_isomorphic(&c.graph));
        let n_cands = cands.len();

        // 5. coverage of candidates over the WHOLE network, then swaps
        let network = &self.network;
        let bits_per_cand: Vec<BitSet> = par::map(&cands, |c| {
            bitset_for(&c.graph, &c.code, network, token, idx)
        });
        let scored: Vec<(Graph, BitSet)> = cands
            .into_iter()
            .zip(bits_per_cand)
            .filter_map(|(c, bits)| bits.any().then(|| (c.graph, bits)))
            .collect();

        let m = self.network.edge_count();
        let w = self.config.weights;
        let mut pool = scored;
        let mut swaps = 0usize;
        for _ in 0..self.config.swap_scans {
            let graphs: Vec<&Graph> = self.patterns.graphs().collect();
            let bit_refs_now: Vec<&BitSet> = self.bitsets.iter().collect();
            let current = set_score_bitsets(&graphs, &bit_refs_now, m, w);
            // partition edges into covered-once / covered-multiply so the
            // progressive-coverage precheck is a popcount, not an O(m·k)
            // union recount per (candidate, pattern) pair
            let mut any = BitSet::new(m);
            let mut multi = BitSet::new(m);
            for b in &self.bitsets {
                multi.or_and(&any, b);
                any.union_with(b);
            }
            let once = any.and_not(&multi);
            let sole: Vec<BitSet> = self.bitsets.iter().map(|b| b.and(&once)).collect();
            let mut best: Option<(f64, usize, usize)> = None;
            for (ci, (cg, cbits)) in pool.iter().enumerate() {
                let gained = cbits.count_and_not(&any);
                for pi in 0..self.bitsets.len() {
                    // the union shrinks iff the candidate gains fewer
                    // edges than it loses of pattern pi's sole coverage
                    let lost = sole[pi].count_and_not(cbits);
                    if gained < lost {
                        continue;
                    }
                    let mut graphs2: Vec<&Graph> = self.patterns.graphs().collect();
                    graphs2[pi] = cg;
                    let mut bit_refs: Vec<&BitSet> = self.bitsets.iter().collect();
                    bit_refs[pi] = cbits;
                    let score = set_score_bitsets(&graphs2, &bit_refs, m, w);
                    if score > current + 1e-12 && best.is_none_or(|(s, _, _)| score > s) {
                        best = Some((score, ci, pi));
                    }
                }
            }
            match best {
                Some((_, ci, pi)) => {
                    let (cg, cbits) = pool.swap_remove(ci);
                    if self.patterns.replace(pi, cg, "tattoo:maintain").is_ok() {
                        self.bitsets[pi] = cbits;
                        swaps += 1;
                    }
                }
                None => break,
            }
        }

        NetworkMaintenanceReport {
            modification: NetworkModification::Major,
            churn,
            swaps,
            candidates: n_cands,
            touched_nodes: region_nodes.len(),
            graphlet_drift,
            truss_region_edges: truss_stats.region_edges,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tattoo;
    use vqi_core::score::set_coverage_network;
    use vqi_datasets::dblp_like;

    fn bootstrap(nodes: usize, seed: u64) -> NetworkMaintainer {
        let net = dblp_like(nodes, seed);
        let budget = PatternBudget::new(5, 4, 6);
        let patterns = Tattoo::default().run(&net, &budget);
        NetworkMaintainer::new(net, patterns, budget, MaintainConfig::default())
    }

    fn star_batch(m: &NetworkMaintainer, hub_label: Label, leaves: usize) -> EdgeBatch {
        // append a hub plus leaves: clearly new structure
        let base = m.network.node_count() as u32;
        let mut batch = EdgeBatch::default();
        batch.node_additions.push(hub_label);
        for i in 0..leaves {
            batch.node_additions.push(hub_label);
            batch.edge_additions.push((base, base + 1 + i as u32, 0));
        }
        batch
    }

    #[test]
    fn small_batch_is_minor() {
        let _guard = crate::fault_test_lock();
        let mut m = bootstrap(300, 1);
        let base = m.network.node_count() as u32;
        let batch = EdgeBatch {
            node_additions: vec![0, 0],
            edge_additions: vec![(base, base + 1, 0)],
            edge_removals: vec![],
        };
        let report = m.apply_batch(batch);
        assert_eq!(report.modification, NetworkModification::Minor);
        assert_eq!(report.swaps, 0);
    }

    #[test]
    fn large_batch_is_major_and_quality_holds() {
        let _guard = crate::fault_test_lock();
        let mut m = bootstrap(250, 2);
        let stale_patterns = m.patterns.clone();
        // big structural injection: several stars worth ~10% churn
        let mut batch = star_batch(&m, 9, 30);
        let extra = star_batch(&m, 9, 0); // no-op filler to keep types simple
        let _ = extra;
        for i in 0..30u32 {
            // wire some leaves together for cycles
            if i + 1 < 30 {
                let base = m.network.node_count() as u32 + 1;
                batch.edge_additions.push((base + i, base + i + 1, 0));
            }
        }
        let report = m.apply_batch(batch);
        assert_eq!(report.modification, NetworkModification::Major);
        assert!(report.touched_nodes > 0);

        // quality guarantee: maintained >= stale on the new network
        let idx = GraphIndex::build(&m.network);
        let stale_bits: Vec<BitSet> = stale_patterns
            .patterns()
            .iter()
            .map(|p| super::bitset_for(&p.graph, &p.code, &m.network, m.network_token, &idx))
            .collect();
        let stale_graphs: Vec<&Graph> = stale_patterns.graphs().collect();
        let stale_refs: Vec<&BitSet> = stale_bits.iter().collect();
        let stale_score = set_score_bitsets(
            &stale_graphs,
            &stale_refs,
            m.network.edge_count(),
            MaintainConfig::default().weights,
        );
        assert!(
            m.score() >= stale_score - 1e-9,
            "maintained {:.4} < stale {:.4}",
            m.score(),
            stale_score
        );
    }

    #[test]
    fn removals_rebuild_the_network() {
        let _guard = crate::fault_test_lock();
        let mut m = bootstrap(200, 3);
        let edges_before = m.network.edge_count();
        // remove the first 5 edges
        let removals: Vec<(u32, u32)> = m
            .network
            .edges()
            .take(5)
            .map(|e| {
                let (u, v) = m.network.endpoints(e);
                (u.0, v.0)
            })
            .collect();
        m.apply_batch(EdgeBatch {
            edge_removals: removals,
            ..Default::default()
        });
        assert_eq!(m.network.edge_count(), edges_before - 5);
    }

    #[test]
    fn maintained_patterns_still_cover() {
        let _guard = crate::fault_test_lock();
        let mut m = bootstrap(250, 4);
        let batch = star_batch(&m, 7, 40);
        m.apply_batch(batch);
        let graphs: Vec<&Graph> = m.patterns.graphs().collect();
        assert!(set_coverage_network(&graphs, &m.network) > 0.0);
    }

    #[test]
    fn incremental_kernels_and_caches_track_mutations() {
        let _guard = crate::fault_test_lock();
        use vqi_graph::graphlet::count_graphlets_par;
        use vqi_graph::truss::trussness;
        let mut m = bootstrap(200, 6);
        let t0 = m.network_token();
        // additions first (grows the node space), then removals, so
        // both delta sides of the incremental kernels are exercised
        let add = star_batch(&m, 3, 8);
        let r1 = m.apply_batch(add);
        let t1 = m.network_token();
        assert_ne!(t1, t0, "mutation must remint the cache token");
        assert!(r1.graphlet_drift > 0.0, "a new star must shift the GFD");
        let removals: Vec<(u32, u32)> = m
            .network
            .edges()
            .take(4)
            .map(|e| {
                let (u, v) = m.network.endpoints(e);
                (u.0, v.0)
            })
            .collect();
        m.apply_batch(EdgeBatch {
            edge_removals: removals,
            ..Default::default()
        });
        assert_ne!(m.network_token(), t1, "every batch remints the token");

        // the maintained kernels must equal a from-scratch run on the
        // current network
        assert_eq!(
            m.truss
                .trussness_for(&m.network)
                .expect("maintainer in sync"),
            trussness(&m.network),
            "incremental trussness diverged from a fresh peel"
        );
        let fresh_census = count_graphlets_par(&m.network);
        assert_eq!(
            m.census.counts().counts.map(f64::to_bits),
            fresh_census.counts.map(f64::to_bits),
            "incremental census diverged from a fresh count"
        );

        // stale-cache regression: the coverage bitsets kept by the
        // maintainer must equal a recompute under a brand-new token,
        // which by construction cannot hit any cached (iso / covered
        // edges) entry from before the mutations
        let fresh_token = mint_target_token();
        let idx = GraphIndex::build(&m.network);
        for (p, bits) in m.patterns.patterns().iter().zip(&m.bitsets) {
            let fresh_bits = bitset_for(&p.graph, &p.code, &m.network, fresh_token, &idx);
            assert_eq!(
                &fresh_bits, bits,
                "cached coverage of pattern {} was reused across a mutation",
                p.id.0
            );
        }
    }

    #[test]
    fn empty_batch_is_noop_minor() {
        let _guard = crate::fault_test_lock();
        let mut m = bootstrap(150, 5);
        let score = m.score();
        let report = m.apply_batch(EdgeBatch::default());
        assert_eq!(report.modification, NetworkModification::Minor);
        assert!((m.score() - score).abs() < 1e-12);
    }
}
