//! TATTOO — truss-based data-driven canned pattern selection for large
//! networks (Yuan et al., PVLDB 2021, as surveyed in §2.3 of the
//! tutorial).
//!
//! Clustering a large network the CATAPULT way is prohibitively
//! expensive, and public query logs for graph databases don't exist — so
//! TATTOO routes around both obstacles:
//!
//! 1. it classifies candidate topologies into the shape categories that
//!    analyses of real-world SPARQL query logs (Bonifati et al.) found
//!    users actually draw — chains, stars, trees, cycles, petals,
//!    flowers, and triangle-rich substructures ([`topology`]);
//! 2. it decomposes the network by trussness into a dense
//!    *truss-infested* region `G_T` (source of the triangle-like shapes)
//!    and a sparse *truss-oblivious* region `G_O` (source of the
//!    tree-like shapes) using [`vqi_graph::truss`];
//! 3. it extracts shape-typed candidates from each region
//!    ([`candidates`]) and selects greedily under a monotone submodular
//!    edge-coverage objective plus diversity and cognitive-load terms
//!    ([`select`]), inheriting the classic `1 − 1/e ≈ 0.63` greedy
//!    guarantee for the coverage part (the paper states a `1/e` bound for
//!    its variant; experiment E5 measures the achieved ratio directly).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod candidates;
pub mod maintain;
pub mod partitioned;
pub mod pipeline;
pub mod select;
pub mod shard;
pub mod topology;

pub use maintain::{EdgeBatch, MaintainConfig, NetworkMaintainer};
pub use partitioned::PartitionedTattoo;
pub use pipeline::{Tattoo, TattooConfig};
pub use shard::ShardedTattoo;
pub use topology::TopologyClass;

/// Serializes tests against the process-global fault-injection plan:
/// any test that runs a pipeline (whose stage bodies contain fault
/// sites) must not race a test that installs a plan.
#[cfg(test)]
pub(crate) fn fault_test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}
