//! Storage-backed sharded TATTOO: candidate generation and selection
//! over CSR shards (§2.5 at the 100M-edge scale).
//!
//! [`PartitionedTattoo`](crate::partitioned) assumes the network is a
//! heap [`Graph`] and partitions it by chunking a BFS order — both of
//! which stop working at 10⁸ edges: the adjacency list alone outgrows
//! comfortable memory, and a full BFS ordering pass costs as much as a
//! kernel. `ShardedTattoo` is the large-network variant:
//!
//! * the network is any [`GraphStorage`] (heap `Graph` or the compact
//!   [`CsrGraph`](vqi_graph::storage::CsrGraph), possibly loaded from a
//!   disk image), accessed only through the trait;
//! * shards are **contiguous node-id ranges** — free to compute, and on
//!   generator-built networks (where clique blocks occupy consecutive
//!   ids) about as locality-preserving as the BFS chunking;
//! * the map phase (induced subgraph → truss split → shape-typed
//!   extraction) runs on the reusable [`ShardExecutor`] under the
//!   `tattoo.shard` prefix: deterministic shard order, per-shard panic
//!   isolation and bounded retry, in-flight gauges;
//! * coverage scoring — the one phase that touches every network edge —
//!   runs over the first `score_shards` shards only, each materialized
//!   with its local→global edge map so per-shard match results land in
//!   one global bitset per candidate. The greedy objective still
//!   normalizes by the *full* edge count, so scores are conservative
//!   (un-scored shards count as uncovered), and with
//!   `score_shards == parts` the coverage is exact.
//!
//! Every phase consumes shard results in shard order, so the selection
//! is bit-identical across storage backends and thread caps — the same
//! contract the truss and graphlet kernels keep.

use crate::candidates::{extract_from_region, Candidate, ExtractParams};
use crate::pipeline::TattooConfig;
use crate::select::{greedy_select, ScoredCandidate};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use vqi_core::bitset::BitSet;
use vqi_core::budget::PatternBudget;
use vqi_core::pattern::PatternSet;
use vqi_core::score::{cognitive_load, coverage_match_options};
use vqi_graph::index::GraphIndex;
use vqi_graph::iso::covered_edges_indexed;
use vqi_graph::par::ShardExecutor;
use vqi_graph::storage::{induced_subgraph_of, induced_subgraph_with_edges, GraphStorage};
use vqi_graph::truss::decompose;
use vqi_graph::{EdgeId, NodeId};

/// Sharded TATTOO over any storage backend.
#[derive(Debug, Clone, Copy)]
pub struct ShardedTattoo {
    /// Base configuration (truss threshold, weights, seed).
    pub config: TattooConfig,
    /// Number of node-range shards for the map phase.
    pub parts: usize,
    /// How many leading shards the coverage scoring materializes. Equal
    /// to `parts` for exact coverage; smaller for a conservative
    /// approximation that bounds scoring cost on huge networks.
    pub score_shards: usize,
    /// Retries per panicked shard before it is dropped from the run.
    pub retries: u32,
    /// Base backoff before a retry; attempt `n` waits `2^(n−1)` times
    /// this. Zero disables the wait.
    pub retry_backoff_ms: u64,
}

impl ShardedTattoo {
    /// A sharded selector with `parts` shards, exact coverage
    /// (`score_shards == parts`), and the default retry policy.
    pub fn new(config: TattooConfig, parts: usize) -> Self {
        assert!(parts >= 1, "need at least one shard");
        ShardedTattoo {
            config,
            parts,
            score_shards: parts,
            retries: 1,
            retry_backoff_ms: 5,
        }
    }

    /// Caps coverage scoring to the first `n` shards (clamped to ≥ 1).
    pub fn with_score_shards(mut self, n: usize) -> Self {
        self.score_shards = n.max(1);
        self
    }

    /// The shard harness: `tattoo.shard.*` metrics with this selector's
    /// retry policy.
    fn executor(&self) -> ShardExecutor {
        ShardExecutor::new("tattoo.shard", self.retries, self.retry_backoff_ms)
    }

    /// Splits node ids into at most `parts` contiguous ranges of equal
    /// size (the last may be short). Pure arithmetic — no traversal, no
    /// per-node state — so sharding a 100M-edge network is free.
    pub fn shard_ranges<S: GraphStorage + ?Sized>(&self, g: &S) -> Vec<std::ops::Range<u32>> {
        let n = g.node_count() as u32;
        if n == 0 {
            return Vec::new();
        }
        let chunk = (n as usize).div_ceil(self.parts).max(1) as u32;
        let mut ranges = Vec::with_capacity(self.parts);
        let mut start = 0u32;
        while start < n {
            let end = start.saturating_add(chunk).min(n);
            ranges.push(start..end);
            start = end;
        }
        ranges
    }

    /// The map phase: per-shard induced subgraph → truss split →
    /// shape-typed extraction, then global dedup by canonical code in
    /// shard order. Shards that exhaust their retries are dropped
    /// deterministically (`tattoo.shard.dropped`): the candidate pool
    /// shrinks, the run carries on — matching the partitioned
    /// pipeline's degrade-don't-die policy.
    pub fn map_candidates<S: GraphStorage + ?Sized>(
        &self,
        g: &S,
        budget: &PatternBudget,
    ) -> Vec<Candidate> {
        let _s = vqi_observe::span("tattoo.shard.map");
        let ranges = self.shard_ranges(g);
        let per_part = ExtractParams {
            samples_per_size: (self.config.extract.samples_per_size / ranges.len().max(1)).max(4),
        };
        let per_shard: Vec<Result<Vec<Candidate>, _>> =
            self.executor().run_shards(ranges.len(), |pi| {
                let nodes: Vec<NodeId> = ranges[pi].clone().map(NodeId).collect();
                let (sub, _) = induced_subgraph_of(g, &nodes);
                let mut rng = SmallRng::seed_from_u64(self.config.seed ^ (pi as u64));
                let d = decompose(&sub, self.config.truss_k);
                let (gt, _) = d.infested_graph(&sub);
                let (go, _) = d.oblivious_graph(&sub);
                let mut cands = extract_from_region(&gt, true, budget, per_part, &mut rng);
                cands.extend(extract_from_region(&go, false, budget, per_part, &mut rng));
                vqi_observe::incr("tattoo.shard.candidates", cands.len() as u64);
                cands
            });
        let mut seen = std::collections::HashSet::new();
        let mut all: Vec<Candidate> = Vec::new();
        for shard in per_shard {
            match shard {
                Ok(cands) => {
                    for c in cands {
                        if seen.insert(c.code.clone()) {
                            all.push(c);
                        }
                    }
                }
                Err(_) => vqi_observe::incr("tattoo.shard.dropped", 1),
            }
        }
        vqi_observe::incr("tattoo.shard.deduped", all.len() as u64);
        all
    }

    /// The scoring phase: materializes the first `score_shards` shards
    /// (with local→global edge maps), matches every candidate against
    /// each shard through a per-shard [`GraphIndex`], and ORs the
    /// global-edge results into one bitset per candidate — merged in
    /// shard order. Candidates covering nothing in the scored shards
    /// are dropped, exactly as whole-network scoring drops
    /// zero-coverage candidates.
    pub fn score_over_shards<S: GraphStorage + ?Sized>(
        &self,
        g: &S,
        candidates: Vec<Candidate>,
    ) -> Vec<ScoredCandidate> {
        let _s = vqi_observe::span("tattoo.shard.score");
        if candidates.is_empty() {
            return Vec::new();
        }
        let ranges = self.shard_ranges(g);
        let n_score = self.score_shards.min(ranges.len());
        // per scored shard: for each candidate, the covered edges in
        // *global* edge ids — sparse, so a dropped shard loses only its
        // own slice of coverage
        let per_shard: Vec<Result<Vec<Vec<EdgeId>>, _>> =
            self.executor().run_shards(n_score, |pi| {
                let nodes: Vec<NodeId> = ranges[pi].clone().map(NodeId).collect();
                let (sub, _, edge_map) = induced_subgraph_with_edges(g, &nodes);
                let idx = GraphIndex::build(&sub);
                candidates
                    .iter()
                    .map(|c| {
                        covered_edges_indexed(&c.graph, &sub, &idx, coverage_match_options())
                            .into_iter()
                            .map(|e| edge_map[e.index()])
                            .collect()
                    })
                    .collect()
            });
        let mut covered: Vec<Vec<EdgeId>> = vec![Vec::new(); candidates.len()];
        for shard in per_shard {
            match shard {
                Ok(per_cand) => {
                    for (acc, edges) in covered.iter_mut().zip(per_cand) {
                        acc.extend(edges);
                    }
                }
                Err(_) => vqi_observe::incr("tattoo.shard.dropped", 1),
            }
        }
        let total = g.edge_count();
        candidates
            .into_iter()
            .zip(covered)
            .filter(|(_, edges)| !edges.is_empty())
            .map(|(c, edges)| {
                let mut bits = BitSet::new(total);
                for e in edges {
                    bits.set(e.index());
                }
                ScoredCandidate {
                    cognitive_load: cognitive_load(&c.graph),
                    candidate: c,
                    covered: bits,
                }
            })
            .collect()
    }

    /// Runs the sharded pipeline: map over all shards, score over the
    /// leading `score_shards`, then the standard greedy selection
    /// normalized by the full network's edge count.
    pub fn run<S: GraphStorage + ?Sized>(&self, g: &S, budget: &PatternBudget) -> PatternSet {
        let candidates = self.map_candidates(g, budget);
        let scored = self.score_over_shards(g, candidates);
        greedy_select(scored, g.edge_count(), budget, self.config.weights)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vqi_datasets::dblp_like;
    use vqi_graph::storage::CsrGraph;
    use vqi_graph::traversal::is_connected;

    fn codes_in_order(set: &PatternSet) -> Vec<vqi_graph::canon::CanonicalCode> {
        set.patterns().iter().map(|p| p.code.clone()).collect()
    }

    #[test]
    fn shard_ranges_cover_all_nodes_disjointly() {
        let net = dblp_like(157, 1);
        for parts in [1usize, 3, 8, 200] {
            let sel = ShardedTattoo::new(TattooConfig::default(), parts);
            let ranges = sel.shard_ranges(&net);
            let mut all: Vec<u32> = ranges.iter().flat_map(|r| r.clone()).collect();
            all.sort_unstable();
            assert_eq!(all.len(), net.node_count(), "parts {parts}");
            assert!(all.windows(2).all(|w| w[1] == w[0] + 1), "parts {parts}");
        }
    }

    #[test]
    fn sharded_selection_matches_heap_backend() {
        let _guard = crate::fault_test_lock();
        for seed in 0..12u64 {
            let net = dblp_like(120, seed);
            let csr = CsrGraph::from_graph(&net);
            let budget = PatternBudget::new(4, 4, 6);
            let sel = ShardedTattoo::new(TattooConfig::default(), 3).with_score_shards(2);
            let reference = codes_in_order(&sel.run(&net, &budget));
            for cap in [1usize, 2, 4] {
                vqi_graph::par::set_thread_cap(cap);
                let heap = codes_in_order(&sel.run(&net, &budget));
                let packed = codes_in_order(&sel.run(&csr, &budget));
                vqi_graph::par::set_thread_cap(0);
                assert_eq!(
                    reference, heap,
                    "seed {seed} cap {cap}: heap backend drifted"
                );
                assert_eq!(
                    reference, packed,
                    "seed {seed} cap {cap}: CSR backend drifted"
                );
            }
        }
    }

    #[test]
    fn sharded_selection_contract_holds() {
        let _guard = crate::fault_test_lock();
        let net = dblp_like(400, 2);
        let csr = CsrGraph::from_graph(&net);
        let budget = PatternBudget::new(5, 4, 6);
        let set = ShardedTattoo::new(TattooConfig::default(), 4).run(&csr, &budget);
        assert!(!set.is_empty());
        for p in set.patterns() {
            assert!(budget.admits(&p.graph));
            assert!(is_connected(&p.graph));
        }
    }

    #[test]
    fn crashed_shards_are_retried_to_an_identical_result() {
        let _guard = crate::fault_test_lock();
        let net = dblp_like(200, 7);
        let csr = CsrGraph::from_graph(&net);
        let budget = PatternBudget::new(4, 4, 6);
        let mut sel = ShardedTattoo::new(TattooConfig::default(), 4);
        sel.retry_backoff_ms = 0;
        let plain = codes_in_order(&sel.run(&csr, &budget));
        for cap in [1usize, 2, 4] {
            vqi_runtime::fault::set_plan(vqi_runtime::fault::FaultPlan {
                seed: 5,
                panic_rate: 1.0,
                ..Default::default()
            });
            vqi_graph::par::set_thread_cap(cap);
            let out = codes_in_order(&sel.run(&csr, &budget));
            vqi_graph::par::set_thread_cap(0);
            vqi_runtime::fault::reset();
            assert_eq!(plain, out, "cap {cap}: one retry must recover every shard");
        }
    }
}
