//! Property-based tests of TATTOO: shape classification and the
//! selection contract on random networks.

use proptest::prelude::*;
use tattoo::topology::{classify, TopologyClass};
use tattoo::{Tattoo, TattooConfig};
use vqi_core::budget::PatternBudget;
use vqi_core::score::set_coverage_network;
use vqi_datasets::{networks, NetworkParams};
use vqi_graph::generate as gen;
use vqi_graph::traversal::is_connected;
use vqi_graph::Graph;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Constructed motifs classify as themselves for any parameters.
    #[test]
    fn motifs_classify_correctly(
        n in 3usize..10,
        leaves in 3usize..8,
        paths in 3usize..5,
        inner in 1usize..3,
        petals in 2usize..4,
        clen in 4usize..6,
    ) {
        prop_assert_eq!(classify(&gen::chain(n, 0, 0)), TopologyClass::Chain);
        prop_assert_eq!(classify(&gen::star(leaves, 0, 0)), TopologyClass::Star);
        let expected_cycle = if n == 3 {
            TopologyClass::TriangleCluster
        } else {
            TopologyClass::Cycle
        };
        prop_assert_eq!(classify(&gen::cycle(n, 0, 0)), expected_cycle);
        prop_assert_eq!(classify(&gen::petal(paths, inner, 0, 0)), TopologyClass::Petal);
        prop_assert_eq!(classify(&gen::flower(petals, clen, 0, 0)), TopologyClass::Flower);
        if n >= 3 {
            prop_assert_eq!(
                classify(&gen::clique(n.max(3), 0, 0)),
                TopologyClass::TriangleCluster
            );
        }
    }

    /// Classification is invariant under node permutation.
    #[test]
    fn classification_is_invariant(paths in 2usize..4, inner in 1usize..3) {
        let g = gen::petal(paths, inner, 0, 0);
        let n = g.node_count();
        let perm: Vec<usize> = (0..n).rev().collect();
        prop_assert_eq!(classify(&g), classify(&g.permuted(&perm)));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The selection contract on random networks: budget respected,
    /// connected patterns, positive edge coverage.
    #[test]
    fn selection_contract(seed in 0u64..500, nodes in 100usize..300) {
        let net = networks::network(NetworkParams {
            nodes,
            seed,
            ..Default::default()
        });
        let budget = PatternBudget::new(5, 4, 6);
        let set = Tattoo::new(TattooConfig {
            seed,
            ..Default::default()
        })
        .run(&net, &budget);
        prop_assert!(set.len() <= 5);
        prop_assert!(!set.is_empty());
        for p in set.patterns() {
            prop_assert!(budget.admits(&p.graph));
            prop_assert!(is_connected(&p.graph));
        }
        let graphs: Vec<&Graph> = set.graphs().collect();
        prop_assert!(set_coverage_network(&graphs, &net) > 0.0);
    }
}
