//! # datadriven-vqi
//!
//! A from-scratch Rust reproduction of the systems surveyed in
//! *"Data-driven Visual Query Interfaces for Graphs: Past, Present, and
//! (Near) Future"* (Bhowmick & Choi, SIGMOD 2022): data-driven
//! construction (CATAPULT for graph collections, TATTOO for large
//! networks, a modular DEXA-style pipeline) and maintenance (MIDAS) of
//! visual graph query interfaces, together with every substrate they
//! need and a simulated-user usability harness.
//!
//! This facade crate re-exports the whole workspace; depend on it to get
//! everything, or on the individual crates for narrower builds.
//!
//! ## Quickstart
//!
//! ```
//! use datadriven_vqi::prelude::*;
//!
//! // 1. a repository: 60 synthetic molecules (AIDS-like)
//! let graphs = datadriven_vqi::datasets::aids_like(MoleculeParams {
//!     count: 60,
//!     ..Default::default()
//! });
//! let repo = GraphRepository::collection(graphs);
//!
//! // 2. construct a data-driven VQI with CATAPULT under a display budget
//! let budget = PatternBudget::new(6, 4, 8);
//! let vqi = VisualQueryInterface::data_driven(&repo, &Catapult::default(), &budget);
//! assert!(vqi.pattern_set().canned().count() > 0);
//!
//! // 3. quality of the selected canned patterns
//! let report = datadriven_vqi::core::score::evaluate(
//!     vqi.pattern_set(),
//!     &repo,
//!     Default::default(),
//! );
//! assert!(report.coverage > 0.0);
//!
//! // 4. a simulated user formulates a query with and without patterns
//! let queries = datadriven_vqi::sim::workload::sample_queries(
//!     &repo,
//!     &Default::default(),
//! );
//! let stats = datadriven_vqi::sim::usability::evaluate_interface(
//!     &vqi,
//!     &queries,
//!     &ActionCosts::default(),
//! );
//! assert!(stats.mean_steps > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use aurora;
pub use catapult;
pub use midas;
pub use tattoo;
pub use vqi_core as core;
pub use vqi_datasets as datasets;
pub use vqi_graph as graph;
pub use vqi_index as index;
pub use vqi_mining as mining;
pub use vqi_modular as modular;
pub use vqi_observe as observe;
pub use vqi_sim as sim;
pub use vqi_timeseries as timeseries;

/// The most commonly used types, re-exported flat.
pub mod prelude {
    pub use aurora::{Aurora, AuroraConfig};
    pub use catapult::{Catapult, CatapultConfig};
    pub use midas::{Midas, MidasConfig, Modification};
    pub use tattoo::{Tattoo, TattooConfig};
    pub use vqi_core::{
        BatchUpdate, GraphRepository, Pattern, PatternBudget, PatternId, PatternKind,
        PatternSelector, PatternSet, VisualQueryInterface,
    };
    pub use vqi_datasets::{MoleculeParams, NetworkParams};
    pub use vqi_graph::{EdgeId, Graph, Label, NodeId, WILDCARD_LABEL};
    pub use vqi_modular::ModularPipeline;
    pub use vqi_sim::{ActionCosts, FormulationPlan};
}
