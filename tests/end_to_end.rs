//! Cross-crate integration tests: the full construct → formulate →
//! execute workflow on both repository regimes, with every selector.

use datadriven_vqi::core::render::{ascii_summary, svg_interface};
use datadriven_vqi::core::results::{QueryResults, ResultOptions};
use datadriven_vqi::core::score::evaluate;
use datadriven_vqi::core::selector::RandomSelector;
use datadriven_vqi::prelude::*;
use datadriven_vqi::sim::plan::{plan_edge_at_a_time, plan_with_patterns};
use datadriven_vqi::sim::workload::{sample_queries, WorkloadParams};
use vqi_graph::iso::are_isomorphic;
use vqi_graph::traversal::is_connected;

fn molecule_repo() -> GraphRepository {
    GraphRepository::collection(datadriven_vqi::datasets::aids_like(MoleculeParams {
        count: 60,
        seed: 77,
        ..Default::default()
    }))
}

fn network_repo() -> GraphRepository {
    GraphRepository::network(datadriven_vqi::datasets::dblp_like(600, 7))
}

fn all_selectors() -> Vec<(&'static str, Box<dyn PatternSelector>)> {
    vec![
        ("catapult", Box::new(Catapult::default())),
        ("tattoo", Box::new(Tattoo::default())),
        ("modular", Box::new(ModularPipeline::standard())),
        ("random", Box::new(RandomSelector::new(13))),
    ]
}

#[test]
fn every_selector_builds_a_valid_collection_vqi() {
    let repo = molecule_repo();
    let budget = PatternBudget::new(5, 4, 7);
    for (name, sel) in all_selectors() {
        let vqi = VisualQueryInterface::data_driven(&repo, sel.as_ref(), &budget);
        assert_eq!(vqi.pattern_set().basic().count(), 3, "{name}: basics");
        let canned: Vec<_> = vqi.pattern_set().canned().collect();
        assert!(!canned.is_empty(), "{name}: no canned patterns");
        for p in &canned {
            assert!(budget.admits(&p.graph), "{name}: budget violated");
            assert!(is_connected(&p.graph), "{name}: disconnected pattern");
        }
        // invariant 1: every canned pattern occurs in the repository
        // (random baseline samples subgraphs, so it satisfies it too)
        if let Some(col) = repo.as_collection() {
            for p in &canned {
                assert!(
                    datadriven_vqi::core::score::pattern_coverage(&p.graph, col) > 0.0,
                    "{name}: pattern occurs nowhere"
                );
            }
        }
    }
}

#[test]
fn every_selector_builds_a_valid_network_vqi() {
    let repo = network_repo();
    let budget = PatternBudget::new(5, 4, 6);
    for (name, sel) in all_selectors() {
        let vqi = VisualQueryInterface::data_driven(&repo, sel.as_ref(), &budget);
        let canned = vqi.pattern_set().canned().count();
        assert!(canned > 0, "{name}: no canned patterns on network");
        let q = evaluate(vqi.pattern_set(), &repo, Default::default());
        assert!(q.coverage > 0.0, "{name}: zero edge coverage");
    }
}

#[test]
fn formulate_and_execute_round_trip_collection() {
    let repo = molecule_repo();
    let budget = PatternBudget::new(6, 4, 7);
    let mut vqi = VisualQueryInterface::data_driven(&repo, &Catapult::default(), &budget);
    let queries = sample_queries(
        &repo,
        &WorkloadParams {
            count: 5,
            sizes: vec![4, 5],
            seed: 3,
        },
    );
    assert!(!queries.is_empty());
    for target in &queries {
        let plan = plan_with_patterns(target, vqi.pattern_set());
        assert!(are_isomorphic(&plan.replay(), target), "plan unsound");
        // drive the actual interface
        let mut fresh = VisualQueryInterface::data_driven(&repo, &Catapult::default(), &budget);
        for op in &plan.ops {
            fresh.edit(op).expect("sound op");
        }
        let results = fresh.execute(&repo, ResultOptions::default());
        // workload queries are sampled from the repo: must match
        assert!(!results.is_empty(), "satisfiable query found nothing");
        match results {
            QueryResults::Collection { matches, .. } => {
                assert!(matches.iter().all(|m| m.embeddings > 0));
            }
            _ => panic!("collection results expected"),
        }
    }
    let _ = &mut vqi;
}

#[test]
fn formulate_and_execute_round_trip_network() {
    let repo = network_repo();
    let budget = PatternBudget::new(5, 4, 6);
    let mut vqi = VisualQueryInterface::data_driven(&repo, &Tattoo::default(), &budget);
    let queries = sample_queries(
        &repo,
        &WorkloadParams {
            count: 3,
            sizes: vec![4],
            seed: 9,
        },
    );
    for target in &queries {
        let plan = plan_with_patterns(target, vqi.pattern_set());
        assert!(are_isomorphic(&plan.replay(), target));
    }
    // execute one query end to end
    if let Some(target) = queries.first() {
        let plan = plan_with_patterns(target, vqi.pattern_set());
        for op in &plan.ops {
            vqi.edit(op).expect("sound op");
        }
        let results = vqi.execute(&repo, ResultOptions { max_embeddings: 50 });
        assert!(!results.is_empty());
    }
}

#[test]
fn assisted_plans_never_exceed_manual() {
    let repo = molecule_repo();
    let budget = PatternBudget::new(8, 4, 8);
    let vqi = VisualQueryInterface::data_driven(&repo, &Catapult::default(), &budget);
    let queries = sample_queries(
        &repo,
        &WorkloadParams {
            count: 12,
            sizes: vec![4, 6, 8],
            seed: 17,
        },
    );
    for target in &queries {
        let manual = plan_edge_at_a_time(target);
        let assisted = plan_with_patterns(target, vqi.pattern_set());
        assert!(
            assisted.steps() <= manual.steps(),
            "assisted {} > manual {}",
            assisted.steps(),
            manual.steps()
        );
    }
}

#[test]
fn renderers_produce_output_for_real_interfaces() {
    let repo = molecule_repo();
    let vqi = VisualQueryInterface::data_driven(
        &repo,
        &Catapult::default(),
        &PatternBudget::new(4, 4, 6),
    );
    let svg = svg_interface(&vqi);
    assert!(svg.contains("Pattern Panel"));
    assert!(svg.matches("<circle").count() > 10);
    let ascii = ascii_summary(&vqi);
    assert!(ascii.contains("catapult"));
}

#[test]
fn midas_maintains_across_a_stream_of_batches() {
    use datadriven_vqi::core::repo::GraphCollection;
    let initial = datadriven_vqi::datasets::aids_like(MoleculeParams {
        count: 40,
        seed: 5,
        ..Default::default()
    });
    let budget = PatternBudget::new(5, 4, 7);
    let mut midas = Midas::bootstrap(
        GraphCollection::new(initial),
        budget,
        MidasConfig::default(),
    );
    for round in 0..3u32 {
        let stale = midas.patterns.clone();
        let batch = BatchUpdate::adding(
            (0..15u32)
                .map(|i| {
                    datadriven_vqi::graph::generate::clique(
                        4 + ((i + round) % 2) as usize,
                        3 + round,
                        0,
                    )
                })
                .collect(),
        );
        midas.apply_update(batch);
        let repo = GraphRepository::Collection(midas.collection.clone());
        let w = Default::default();
        let fresh = evaluate(&midas.patterns, &repo, w);
        let old = evaluate(&stale, &repo, w);
        assert!(
            fresh.score >= old.score - 1e-9,
            "round {round}: maintained {:.4} < stale {:.4}",
            fresh.score,
            old.score
        );
    }
}
