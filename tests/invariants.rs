//! Property-based tests of the DESIGN.md invariants, driven by random
//! labeled graphs.

use proptest::prelude::*;
use vqi_graph::canon::canonical_code;
use vqi_graph::graphlet::{graphlet_distribution, GRAPHLET_CLASSES};
use vqi_graph::iso::{are_isomorphic, is_subgraph_isomorphic, MatchOptions};
use vqi_graph::truss::decompose;
use vqi_graph::{Graph, NodeId};

/// Strategy: a random labeled graph with up to `max_n` nodes.
fn arb_graph(max_n: usize) -> impl Strategy<Value = Graph> {
    (2..=max_n).prop_flat_map(move |n| {
        let edges = proptest::collection::vec(proptest::bool::weighted(0.4), n * (n - 1) / 2);
        let node_labels = proptest::collection::vec(0u32..3, n);
        let edge_labels = proptest::collection::vec(0u32..2, n * (n - 1) / 2);
        (node_labels, edges, edge_labels).prop_map(move |(nl, es, el)| {
            let mut g = Graph::new();
            let nodes: Vec<NodeId> = nl.iter().map(|&l| g.add_node(l)).collect();
            let mut idx = 0;
            for i in 0..n {
                for j in (i + 1)..n {
                    if es[idx] {
                        g.add_edge(nodes[i], nodes[j], el[idx]);
                    }
                    idx += 1;
                }
            }
            g
        })
    })
}

/// Strategy: a permutation of `0..n`.
fn arb_perm(n: usize) -> impl Strategy<Value = Vec<usize>> {
    Just((0..n).collect::<Vec<usize>>()).prop_shuffle()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Invariant: canonical codes are permutation-invariant and equality
    /// coincides with VF2 isomorphism.
    #[test]
    fn canonical_code_is_permutation_invariant(g in arb_graph(7)) {
        let n = g.node_count();
        let code = canonical_code(&g);
        proptest!(|(perm in arb_perm(n))| {
            let h = g.permuted(&perm);
            prop_assert_eq!(&canonical_code(&h), &code);
        });
    }

    /// Invariant 4: truss regions partition the edge set.
    #[test]
    fn truss_regions_partition_edges(g in arb_graph(10), k in 3u32..5) {
        let d = decompose(&g, k);
        prop_assert_eq!(
            d.infested_edges.len() + d.oblivious_edges.len(),
            g.edge_count()
        );
        let mut all: Vec<_> = d.infested_edges.iter()
            .chain(d.oblivious_edges.iter()).copied().collect();
        all.sort_unstable();
        all.dedup();
        prop_assert_eq!(all.len(), g.edge_count());
        // every infested edge has trussness >= k, every oblivious < k
        for e in &d.infested_edges {
            prop_assert!(d.trussness[e.index()] >= k);
        }
        for e in &d.oblivious_edges {
            prop_assert!(d.trussness[e.index()] < k);
        }
    }

    /// Invariant 6: graphlet frequency distributions sum to 1 (or are all
    /// zero) and are permutation-invariant.
    #[test]
    fn gfd_is_a_distribution(g in arb_graph(8)) {
        let d = graphlet_distribution(&g);
        let sum: f64 = d.iter().sum();
        prop_assert!(sum.abs() < 1e-9 || (sum - 1.0).abs() < 1e-9, "sum = {sum}");
        prop_assert_eq!(d.len(), GRAPHLET_CLASSES);
        let n = g.node_count();
        proptest!(|(perm in arb_perm(n))| {
            let h = g.permuted(&perm);
            let dh = graphlet_distribution(&h);
            for (a, b) in d.iter().zip(dh.iter()) {
                prop_assert!((a - b).abs() < 1e-9);
            }
        });
    }

    /// Invariant 5: closure graphs embed every constituent.
    #[test]
    fn closure_covers_constituents(
        graphs in proptest::collection::vec(arb_graph(6), 2..5)
    ) {
        let refs: Vec<&Graph> = graphs.iter().collect();
        let closure = vqi_mining::closure::closure_of(&refs).unwrap();
        for g in &graphs {
            prop_assert!(
                is_subgraph_isomorphic(g, &closure.graph, MatchOptions::with_wildcards()),
                "constituent not covered by closure"
            );
        }
        prop_assert_eq!(closure.edge_weights.len(), closure.graph.edge_count());
    }

    /// Invariant 7: formulation plans are sound — replaying them yields
    /// the target query exactly.
    #[test]
    fn plans_are_sound(target in arb_graph(7)) {
        // edge-at-a-time always
        let manual = vqi_sim::plan::plan_edge_at_a_time(&target);
        prop_assert!(are_isomorphic(&manual.replay(), &target));
        // pattern-at-a-time with the basic wildcard patterns
        let basics = vqi_core::pattern::default_basic_patterns();
        let assisted = vqi_sim::plan::plan_with_patterns(&target, &basics);
        prop_assert!(are_isomorphic(&assisted.replay(), &target));
        prop_assert!(assisted.steps() <= manual.steps());
    }

    /// Invariant 2: pattern sets never hold two isomorphic members.
    #[test]
    fn pattern_sets_dedup(graphs in proptest::collection::vec(arb_graph(5), 1..8)) {
        use vqi_core::pattern::{PatternKind, PatternSet};
        let mut set = PatternSet::new();
        for g in &graphs {
            let _ = set.insert(g.clone(), PatternKind::Canned, "prop");
        }
        let members: Vec<&Graph> = set.graphs().collect();
        for i in 0..members.len() {
            for j in (i + 1)..members.len() {
                prop_assert!(
                    !are_isomorphic(members[i], members[j]),
                    "isomorphic duplicates at {i}, {j}"
                );
            }
        }
    }

    /// MCS similarity is symmetric, bounded, and 1 on identical graphs.
    #[test]
    fn mcs_similarity_properties(a in arb_graph(6), b in arb_graph(6)) {
        let s_ab = vqi_graph::mcs::mcs_similarity(&a, &b);
        let s_ba = vqi_graph::mcs::mcs_similarity(&b, &a);
        prop_assert!((s_ab - s_ba).abs() < 1e-12);
        prop_assert!((0.0..=1.0).contains(&s_ab));
        if a.edge_count() > 0 {
            prop_assert!((vqi_graph::mcs::mcs_similarity(&a, &a) - 1.0).abs() < 1e-12);
        }
    }

    /// Text round-trip: io::write then io::parse preserves structure.
    #[test]
    fn io_round_trip(graphs in proptest::collection::vec(arb_graph(6), 1..5)) {
        let text = vqi_graph::io::write_transactions(&graphs);
        let parsed = vqi_graph::io::parse_transactions(&text).unwrap();
        prop_assert_eq!(parsed.len(), graphs.len());
        for (a, b) in graphs.iter().zip(parsed.iter()) {
            prop_assert!(are_isomorphic(a, b));
        }
    }
}
