//! Evolving-repository scenario: the MIDAS workload.
//!
//! Bootstraps a pattern set over a compound collection, then streams
//! batch updates (daily-style additions plus deletions, like PubChem /
//! DrugBank). MIDAS decides per batch whether the modification is minor
//! or major, maintains clusters/CSGs/FCTs incrementally, and swaps
//! patterns only when that improves the set — and is compared against
//! re-running CATAPULT from scratch on every batch.
//!
//! Run with: `cargo run --release --example evolving_database`

use datadriven_vqi::core::repo::GraphCollection;
use datadriven_vqi::core::score::evaluate;
use datadriven_vqi::prelude::*;
use std::time::Instant;

fn main() {
    let initial = datadriven_vqi::datasets::aids_like(MoleculeParams {
        count: 60,
        seed: 31,
        ..Default::default()
    });
    let budget = PatternBudget::new(6, 4, 7);
    let mut midas = Midas::bootstrap(
        GraphCollection::new(initial),
        budget,
        MidasConfig::default(),
    );
    println!(
        "bootstrap: {} graphs, {} clusters, {} canned patterns\n",
        midas.collection.len(),
        midas.cluster_count(),
        midas.patterns.len()
    );

    // five batches: three drifting structurally, two routine
    let batches: Vec<(&str, BatchUpdate)> = vec![
        (
            "routine additions",
            BatchUpdate::adding(datadriven_vqi::datasets::aids_like(MoleculeParams {
                count: 5,
                seed: 32,
                ..Default::default()
            })),
        ),
        (
            "ring-system influx",
            BatchUpdate::adding(
                (0..20)
                    .map(|i| datadriven_vqi::graph::generate::clique(4 + i % 2, 3, 0))
                    .collect(),
            ),
        ),
        ("deletions", BatchUpdate::removing((0..10).collect())),
        (
            "star influx",
            BatchUpdate::adding(
                (0..20)
                    .map(|i| datadriven_vqi::graph::generate::star(5 + i % 3, 4, 0))
                    .collect(),
            ),
        ),
        (
            "routine additions",
            BatchUpdate::adding(datadriven_vqi::datasets::aids_like(MoleculeParams {
                count: 5,
                seed: 33,
                ..Default::default()
            })),
        ),
    ];

    println!(
        "{:<20} {:>6} {:>9} {:>6} {:>7} {:>12} {:>12}",
        "batch", "|D|", "gfd-dist", "kind", "swaps", "midas (ms)", "rerun (ms)"
    );
    for (name, batch) in batches {
        let t0 = Instant::now();
        let report = midas.apply_update(batch);
        let midas_ms = t0.elapsed().as_secs_f64() * 1e3;

        // the from-scratch alternative MIDAS exists to avoid
        let t1 = Instant::now();
        let (rerun_set, _) = Catapult::default().run_with_state(&midas.collection, &budget);
        let rerun_ms = t1.elapsed().as_secs_f64() * 1e3;

        println!(
            "{:<20} {:>6} {:>9.4} {:>6} {:>7} {:>12.1} {:>12.1}",
            name,
            midas.collection.len(),
            report.gfd_distance,
            match report.modification {
                Modification::Minor => "minor",
                Modification::Major => "MAJOR",
            },
            report.swaps,
            midas_ms,
            rerun_ms
        );
        let _ = rerun_set;
    }

    let repo = GraphRepository::Collection(midas.collection.clone());
    let q = evaluate(&midas.patterns, &repo, Default::default());
    println!(
        "\nfinal maintained set: coverage={:.3} diversity={:.3} cognitive load={:.3} score={:.3}",
        q.coverage, q.diversity, q.cognitive_load, q.score
    );
}
