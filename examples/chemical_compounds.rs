//! Chemical-compound scenario: the CATAPULT workload.
//!
//! Compares three selectors (CATAPULT, the modular pipeline, random
//! baseline) on an AIDS-like compound collection across pattern quality
//! (coverage / diversity / cognitive load) and simulated-user usability
//! (formulation steps and time), the comparison §2.3 of the tutorial
//! summarizes.
//!
//! Run with: `cargo run --release --example chemical_compounds`

use datadriven_vqi::core::score::evaluate;
use datadriven_vqi::core::selector::RandomSelector;
use datadriven_vqi::prelude::*;
use datadriven_vqi::sim::usability::evaluate_interface;
use datadriven_vqi::sim::workload::{sample_queries, WorkloadParams};

fn main() {
    let graphs = datadriven_vqi::datasets::aids_like(MoleculeParams {
        count: 150,
        seed: 11,
        ..Default::default()
    });
    let repo = GraphRepository::collection(graphs);
    let budget = PatternBudget::new(8, 4, 8);
    let queries = sample_queries(
        &repo,
        &WorkloadParams {
            count: 25,
            sizes: vec![4, 6, 8],
            seed: 21,
        },
    );
    println!(
        "collection: {} compounds | budget: {} patterns of {}-{} nodes | workload: {} queries\n",
        repo.graph_count(),
        budget.count,
        budget.min_size,
        budget.max_size,
        queries.len()
    );

    let selectors: Vec<(&str, Box<dyn PatternSelector>)> = vec![
        ("catapult", Box::new(Catapult::default())),
        (
            "aurora",
            Box::new(datadriven_vqi::prelude::Aurora::default()),
        ),
        ("modular", Box::new(ModularPipeline::standard())),
        ("random", Box::new(RandomSelector::new(7))),
    ];

    println!(
        "{:<10} {:>9} {:>9} {:>8} {:>7} {:>11} {:>10}",
        "selector", "coverage", "diversity", "cogload", "score", "mean steps", "mean time"
    );
    let manual = VisualQueryInterface::manual(
        repo.node_labels().into_iter().collect(),
        repo.edge_labels().into_iter().collect(),
        vec![],
    );
    for (name, selector) in &selectors {
        let vqi = VisualQueryInterface::data_driven(&repo, selector.as_ref(), &budget);
        let q = evaluate(vqi.pattern_set(), &repo, Default::default());
        let u = evaluate_interface(&vqi, &queries, &ActionCosts::default());
        println!(
            "{:<10} {:>9.3} {:>9.3} {:>8.3} {:>7.3} {:>11.2} {:>9.1}s",
            name, q.coverage, q.diversity, q.cognitive_load, q.score, u.mean_steps, u.mean_time
        );
    }
    let um = evaluate_interface(&manual, &queries, &ActionCosts::default());
    println!(
        "{:<10} {:>9} {:>9} {:>8} {:>7} {:>11.2} {:>9.1}s   (basic patterns only)",
        "manual", "-", "-", "-", "-", um.mean_steps, um.mean_time
    );
}
