//! A tour of the paper's §2.5 future directions, implemented: exploratory
//! extension suggestions, plug-and-play persistence, aesthetics-aware
//! layout optimization, pattern-based summarization, and partitioned
//! selection.
//!
//! Run with: `cargo run --release --example future_directions`

use datadriven_vqi::core::aesthetics::visual_complexity;
use datadriven_vqi::core::explore::{suggest_extensions, SuggestOptions};
use datadriven_vqi::core::layout::{circular, force_directed, LayoutParams};
use datadriven_vqi::core::optimize::{anneal_layout, layout_cost, AnnealParams, LayoutObjective};
use datadriven_vqi::core::persist::{load_interface, save_interface};
use datadriven_vqi::core::summary::{summarize, SummaryOptions};
use datadriven_vqi::prelude::*;
use tattoo::PartitionedTattoo;

fn main() {
    let net = datadriven_vqi::datasets::dblp_like(1_000, 17);
    let repo = GraphRepository::network(net.clone());
    let budget = PatternBudget::new(6, 4, 6);
    let vqi = VisualQueryInterface::data_driven(&repo, &Tattoo::default(), &budget);

    // 1. exploratory search: what can grow from a single hub node?
    println!("--- exploratory extension suggestions (PICASSO/VIIQ style) ---");
    let mut fragment = Graph::new();
    fragment.add_node(0); // the most common label
    for s in suggest_extensions(
        &fragment,
        &repo,
        SuggestOptions {
            top_k: 5,
            ..Default::default()
        },
    ) {
        println!(
            "  extend node {} with a label-{} neighbor via label-{} edge (support {})",
            s.attach_to, s.node_label, s.edge_label, s.support
        );
    }

    // 2. plug-and-play persistence: ship the interface, reload it
    println!("\n--- plug-and-play persistence ---");
    let doc = save_interface(&vqi);
    let reloaded = load_interface(&doc).expect("round trip");
    println!(
        "  saved {} bytes; reloaded interface has {} patterns, {} node labels",
        doc.len(),
        reloaded.pattern_set().len(),
        reloaded.attributes.node_labels.len()
    );

    // 3. aesthetics-aware layout of the densest pattern
    println!("\n--- aesthetics-aware layout optimization ---");
    if let Some(p) = vqi.pattern_set().canned().max_by_key(|p| p.edge_count()) {
        let obj = LayoutObjective::default();
        let bad = circular(&p.graph, 200.0, 200.0);
        let fr = force_directed(&p.graph, LayoutParams::default());
        let (best, _) = anneal_layout(&p.graph, &fr, &obj, AnnealParams::default());
        println!(
            "  densest pattern (n={}, m={}): cost circular={:.2} force-directed={:.2} annealed={:.2}",
            p.size(),
            p.edge_count(),
            layout_cost(&p.graph, &bad, &obj),
            layout_cost(&p.graph, &fr, &obj),
            layout_cost(&p.graph, &best, &obj)
        );
        let vc = visual_complexity(&p.graph, &best);
        println!(
            "  annealed drawing: {} crossings, complexity {:.2}",
            vc.crossings, vc.complexity
        );
    }

    // 4. pattern-based summarization
    println!("\n--- pattern-based graph summarization ---");
    let s = summarize(&net, vqi.pattern_set(), SummaryOptions::default());
    println!(
        "  {} nodes -> {} supernodes (compression {:.1}%), {:.1}% of nodes absorbed into patterns",
        net.node_count(),
        s.graph.node_count(),
        100.0 * s.compression_ratio,
        100.0 * s.node_coverage
    );

    // 5. partitioned selection for massive networks
    println!("\n--- partitioned (map/reduce-style) selection ---");
    let parted = PartitionedTattoo::new(Default::default(), 4).run(&net, &budget);
    let q = datadriven_vqi::core::score::evaluate(&parted, &repo, Default::default());
    println!(
        "  4-way partitioned selection: {} patterns, coverage {:.3}, score {:.3}",
        parted.len(),
        q.coverage,
        q.score
    );
}
