//! Quickstart: construct a data-driven VQI over a molecule collection,
//! formulate a query pattern-at-a-time, execute it, and render the
//! interface to SVG.
//!
//! Run with: `cargo run --release --example quickstart`

use datadriven_vqi::core::render::{ascii_summary, svg_interface};
use datadriven_vqi::core::results::ResultOptions;
use datadriven_vqi::core::score::evaluate;
use datadriven_vqi::prelude::*;
use datadriven_vqi::sim::plan::{plan_edge_at_a_time, plan_with_patterns};

fn main() {
    // 1. a repository of 80 synthetic molecules (stands in for AIDS/PubChem)
    let graphs = datadriven_vqi::datasets::aids_like(MoleculeParams {
        count: 80,
        ..Default::default()
    });
    println!(
        "repository: {} data graphs, {} total edges",
        graphs.len(),
        graphs.iter().map(|g| g.edge_count()).sum::<usize>()
    );
    let repo = GraphRepository::collection(graphs);

    // 2. data-driven construction with CATAPULT under a display budget
    let budget = PatternBudget::new(6, 4, 8);
    let mut vqi = VisualQueryInterface::data_driven(&repo, &Catapult::default(), &budget);
    println!("\n{}", ascii_summary(&vqi));

    // 3. quality of the canned patterns
    let q = evaluate(vqi.pattern_set(), &repo, Default::default());
    println!(
        "pattern quality: coverage={:.2} diversity={:.2} cognitive-load={:.2} score={:.3}",
        q.coverage, q.diversity, q.cognitive_load, q.score
    );

    // 4. a simulated user formulates a benzene-ring-with-tail query
    let mut target = datadriven_vqi::graph::generate::cycle(6, 0, 0);
    let tail = target.add_node(2);
    target.add_edge(NodeId(0), tail, 0);
    let manual_plan = plan_edge_at_a_time(&target);
    let assisted_plan = plan_with_patterns(&target, vqi.pattern_set());
    println!(
        "\nformulating a {}-node query: edge-at-a-time = {} steps, with patterns = {} steps ({} pattern drop(s))",
        target.node_count(),
        manual_plan.steps(),
        assisted_plan.steps(),
        assisted_plan.patterns_used
    );

    // 5. execute the plan in the Query Panel and run it
    for op in &assisted_plan.ops {
        vqi.edit(op).expect("plans are sound");
    }
    let results = vqi.execute(&repo, ResultOptions::default());
    println!("results panel: {} matching graph(s)", results.len());

    // 6. render the full interface
    let svg = svg_interface(&vqi);
    let path = std::env::temp_dir().join("vqi_quickstart.svg");
    std::fs::write(&path, svg).expect("svg written");
    println!("interface rendered to {}", path.display());
}
