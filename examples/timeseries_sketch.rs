//! "Beyond Graphs" scenario (§2.5): a data-driven sketch panel for time
//! series. Mines motifs from a synthetic series, populates a Shape
//! Panel, and shows a simulated analyst querying the series by sketch —
//! free-hand vs panel-assisted.
//!
//! Run with: `cargo run --release --example timeseries_sketch`

use datadriven_vqi::timeseries::series::{synthetic_with_motifs, znormalize, SyntheticParams};
use datadriven_vqi::timeseries::shapes::{select_shapes, ShapeBudget};
use datadriven_vqi::timeseries::sketch::{match_sketch, segment_count, sketch_cost, SketchCosts};

fn spark(values: &[f64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let (min, max) = values
        .iter()
        .fold((f64::MAX, f64::MIN), |(lo, hi), &v| (lo.min(v), hi.max(v)));
    let span = (max - min).max(1e-9);
    values
        .iter()
        .step_by((values.len() / 40).max(1))
        .map(|v| BARS[(((v - min) / span) * 7.0).round() as usize])
        .collect()
}

fn main() {
    let params = SyntheticParams {
        len: 3_000,
        motif_occurrences: 7,
        motif_width: 50,
        noise: 0.12,
        seed: 99,
    };
    let (series, planted) = synthetic_with_motifs(params);
    println!(
        "series: {} samples, {} planted motif occurrences at {:?}",
        series.len(),
        planted.len(),
        planted
    );

    // data-driven Shape Panel
    let panel = select_shapes(
        &series,
        ShapeBudget {
            count: 5,
            width: params.motif_width,
            epsilon: 3.5,
        },
    );
    println!(
        "\nshape panel ({} shapes): coverage={:.3} diversity={:.3} cognitive load={:.3}",
        panel.shapes.len(),
        panel.coverage,
        panel.diversity,
        panel.cognitive_load
    );
    for (i, s) in panel.shapes.iter().enumerate() {
        println!(
            "  [{}] {}  (from offset {}, {} segments)",
            i,
            spark(&s.values),
            s.provenance,
            segment_count(&s.values)
        );
    }

    // the analyst wants to find the recurring burst she half-remembers
    let intended = znormalize(series.window(planted[0], params.motif_width).unwrap());
    let costs = SketchCosts::default();
    let freehand = sketch_cost(&intended, None, &costs);
    let assisted = sketch_cost(&intended, Some(&panel), &costs);
    println!(
        "\nsketching the intended shape: free-hand {:.1}s, panel-assisted {:.1}s",
        freehand, assisted
    );

    // run the query with the best panel shape
    let best = &panel.shapes[0];
    let matches = match_sketch(&series, &best.values, 8);
    println!("\ntop matches of panel shape [0]:");
    for m in &matches {
        let hit = planted.iter().any(|&p| p.abs_diff(m.offset) <= 5);
        println!(
            "  offset {:>5}  distance {:.3}  {}",
            m.offset,
            m.distance,
            if hit { "<- planted occurrence" } else { "" }
        );
    }
    let hits = matches
        .iter()
        .filter(|m| planted.iter().any(|&p| p.abs_diff(m.offset) <= 5))
        .count();
    println!(
        "\n{hits}/{} planted occurrences retrieved by the mined shape",
        planted.len()
    );
}
