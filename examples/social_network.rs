//! Large-network scenario: the TATTOO workload.
//!
//! Builds a DBLP-like coauthorship network, shows the k-truss split into
//! truss-infested and truss-oblivious regions, selects canned patterns
//! with TATTOO, reports their topology classes, and compares usability
//! against a manual interface.
//!
//! Run with: `cargo run --release --example social_network`

use datadriven_vqi::core::score::evaluate;
use datadriven_vqi::graph::truss::decompose;
use datadriven_vqi::prelude::*;
use datadriven_vqi::sim::usability::compare;
use datadriven_vqi::sim::workload::{sample_queries, WorkloadParams};
use tattoo::topology::classify;

fn main() {
    let net = datadriven_vqi::datasets::dblp_like(2_000, 3);
    println!(
        "network: {} nodes, {} edges, clustering coefficient {:.3}",
        net.node_count(),
        net.edge_count(),
        datadriven_vqi::graph::metrics::clustering_coefficient(&net)
    );

    // the decomposition TATTOO starts from
    let d = decompose(&net, 3);
    println!(
        "3-truss split: |E(G_T)| = {} ({:.1}%), |E(G_O)| = {}",
        d.infested_edges.len(),
        100.0 * d.infested_edges.len() as f64 / net.edge_count() as f64,
        d.oblivious_edges.len()
    );

    let repo = GraphRepository::network(net);
    let budget = PatternBudget::new(8, 4, 7);
    let vqi = VisualQueryInterface::data_driven(&repo, &Tattoo::default(), &budget);
    println!("\nselected canned patterns:");
    for p in vqi.pattern_set().canned() {
        println!(
            "  n={} m={} class={:?} ({})",
            p.size(),
            p.edge_count(),
            classify(&p.graph),
            p.provenance
        );
    }
    let q = evaluate(vqi.pattern_set(), &repo, Default::default());
    println!(
        "\nquality: edge coverage={:.3} diversity={:.3} cognitive load={:.3}",
        q.coverage, q.diversity, q.cognitive_load
    );

    // usability vs a manual interface on a shared workload
    let queries = sample_queries(
        &repo,
        &WorkloadParams {
            count: 20,
            sizes: vec![4, 6, 8],
            seed: 5,
        },
    );
    let manual = VisualQueryInterface::manual(
        repo.node_labels().into_iter().collect(),
        repo.edge_labels().into_iter().collect(),
        vec![],
    );
    let outcome = compare(&vqi, &manual, &queries, &ActionCosts::default());
    println!(
        "\nusability over {} queries:\n  tattoo: {:.2} steps, {:.1}s   manual: {:.2} steps, {:.1}s",
        outcome.a.queries,
        outcome.a.mean_steps,
        outcome.a.mean_time,
        outcome.b.mean_steps,
        outcome.b.mean_time
    );
    println!(
        "  data-driven strictly fewer steps on {:.0}% of queries",
        100.0 * outcome.preferred_fraction
    );
}
